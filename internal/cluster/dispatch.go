// Job dispatch and failover. Each admitted cluster job gets a watcher
// goroutine that places it on the least-loaded healthy node, submits it
// under the job's stable "cluster/<id>" idempotency key, and polls for
// the result. The exactly-once discipline lives here:
//
//   - An *ambiguous* submit failure (transport fault, breaker open,
//     unclassified 5xx) may mean the node admitted the job before the
//     reply was lost — so the watcher sticks to that node and resubmits
//     the same key until the node either answers (dedup attaches to the
//     original job) or is declared lost. Re-routing on ambiguity would
//     risk proving the job on two nodes.
//   - Only a *provable non-admission* — the node's own "queue_full" or
//     "draining" class, which it emits strictly before enqueueing — is
//     safe to re-route immediately.
//   - A node is *lost* for a job when its generation moved past the
//     dispatch generation: the prober ejected it (probes stale beyond
//     StaleAfter) or its /healthz epoch changed (restart). Before
//     re-dispatching, the watcher makes one last bounded attempt to
//     fetch the finished result from the old address, so a proof that
//     actually completed is recovered instead of recomputed.
package cluster

import (
	"context"
	"errors"
	"net/http"
	"time"

	"unizk/internal/jobs"
	"unizk/internal/serverclient"
)

// Internal dispatch outcomes.
var (
	// errNodeLost: the attributed node was ejected or changed epoch; the
	// job must be re-dispatched elsewhere.
	errNodeLost = errors.New("cluster: node lost")
	// errNodeBusy: the node provably refused the submit before admission
	// (queue_full/draining); another node may be tried immediately.
	errNodeBusy = errors.New("cluster: node refused submission")
)

// watch drives one cluster job to a terminal state.
func (c *Coordinator) watch(j *cjob) {
	defer c.watchers.Done()
	res, err := c.runJob(j)
	if err == nil && j.cacheLeader {
		// Settle the coordinator's proof-cache flight before the job goes
		// terminal; with CacheVerify a proof failing re-verification fails
		// the job instead of fanning out to every coalesced waiter.
		if cerr := c.cache.Complete(j.cacheKey, j.id, res, c.cacheCheck(j)); cerr != nil {
			res, err = nil, cerr
		}
	}
	if err != nil && errors.Is(err, j.ctx.Err()) {
		// The job's own context ended it (cancel or deadline); if a
		// remote job is still attributed, cancel it there so the node
		// does not burn a prover slot on a result nobody will read.
		c.cancelRemote(j)
		// Normalize: a cluster-timeout surfaces as the deadline error,
		// an explicit cancel as context.Canceled.
		err = j.ctx.Err()
	}
	c.finishJob(j, res, err)
}

// cacheCheck returns the verify-on-insert hook for a flight leader:
// a full re-verification of the node-produced proof against the
// request, or nil when CacheVerify is off.
func (c *Coordinator) cacheCheck(j *cjob) func(*jobs.Result) error {
	if !c.cfg.CacheVerify {
		return nil
	}
	return func(res *jobs.Result) error { return jobs.CheckResult(j.req, res) }
}

// runJob is the placement/failover loop: pick a node, run the job
// there, and either return its outcome or — when the node was lost or
// provably refused — loop to try another.
func (c *Coordinator) runJob(j *cjob) (*jobs.Result, error) {
	for {
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		n := c.pickNode()
		if n == nil {
			// Nothing placeable right now (all ejected, draining, or in
			// saturation backoff). The job stays admitted; placement
			// retries on the probe cadence until a node recovers or the
			// job's deadline expires.
			if !sleepCtx(j.ctx, c.cfg.ProbeInterval) {
				return nil, j.ctx.Err()
			}
			continue
		}
		res, err := c.runOn(j, n)
		switch {
		case err == nil:
			return res, nil
		case errors.Is(err, errNodeLost):
			// If the "lost" node is actually alive (spurious ejection —
			// probes starved or chaos-eaten), the orphaned remote job
			// would burn a prover slot on a result nobody will consume.
			// Best-effort cancel it before re-dispatching; against a
			// truly dead node this fails fast (breaker or refused dial).
			c.cancelRemote(j)
			c.met.redispatches.Add(1)
			j.mu.Lock()
			j.redispatches++
			j.node, j.remoteID = nil, ""
			j.mu.Unlock()
			continue
		case errors.Is(err, errNodeBusy):
			continue
		default:
			return nil, err
		}
	}
}

// pickNode returns the placeable node with the lowest load score, or
// nil when none qualifies. Ties break by node-list order, keeping
// placement deterministic for a given probe picture.
func (c *Coordinator) pickNode() *node {
	now := time.Now()
	var best *node
	bestScore := 0
	for _, n := range c.nodes {
		if !n.placeable(now) {
			continue
		}
		if s := n.score(); best == nil || s < bestScore {
			best, bestScore = n, s
		}
	}
	return best
}

// runOn dispatches the job to one node and sees it through to a result
// there, or to errNodeLost/errNodeBusy for the outer loop.
func (c *Coordinator) runOn(j *cjob, n *node) (*jobs.Result, error) {
	gen := n.generation()
	c.snapMu.RLock()
	j.mu.Lock()
	j.node, j.genAt = n, gen
	if j.started.IsZero() {
		j.started = time.Now()
	}
	if j.state == cstateQueued {
		j.state = cstateDispatched
		close(j.running) // first dispatch only; failovers keep the state
	}
	j.dispatches++
	j.mu.Unlock()
	// Durable before the submit attempt: replay over-counts rather than
	// under-counts dispatches, keeping the re-dispatch credit an upper
	// bound on extra prove invocations.
	c.journalDispatched(j.id, n.url)
	c.snapMu.RUnlock()

	n.addOutstanding(1)
	defer n.addOutstanding(-1)

	remoteID, err := c.submitTo(j, n, gen)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.remoteID = remoteID
	j.mu.Unlock()
	return c.awaitResult(j, n, gen, remoteID)
}

// submitTo places the job on the node under its stable cluster
// idempotency key, retrying ambiguous failures against the same node.
func (c *Coordinator) submitTo(j *cjob, n *node, gen int64) (string, error) {
	// The node-side key is the cluster job id, not the client's key: it
	// is stable across resubmits and re-dispatches, never collides
	// between cluster jobs, and — because IdempotencyKey is excluded
	// from what the prover sees — leaves the proof bytes identical to a
	// direct submission.
	req := *j.req
	req.IdempotencyKey = j.nodeKey
	opts := serverclient.Options{Priority: j.priority}
	if dl, ok := j.ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 {
			opts.Timeout = rem
		}
	}
	for {
		if err := j.ctx.Err(); err != nil {
			return "", err
		}
		reply, err := n.client.SubmitDetail(j.ctx, &req, opts)
		if err == nil {
			return reply.ID, nil
		}
		if refusedBeforeAdmission(err) {
			n.markSaturated(c.cfg.SaturationBackoff)
			return "", errNodeBusy
		}
		if terminalSubmitError(err) {
			return "", err
		}
		// Ambiguous: the submit may or may not have been admitted.
		// Stick with this node — resubmitting the same key is safe and
		// converges — unless the prober has declared it lost.
		if n.lostSince(gen) {
			return "", errNodeLost
		}
		if !sleepCtx(j.ctx, c.cfg.PollInterval) {
			return "", j.ctx.Err()
		}
	}
}

// refusedBeforeAdmission reports a *provable* non-admission: the node's
// own backpressure/drain classes, emitted strictly before a job is
// enqueued. Only these make immediate re-routing safe. A 503 with any
// other class (e.g. a fault injector's blip) proves nothing about
// admission and must be treated as ambiguous.
func refusedBeforeAdmission(err error) bool {
	var ae *serverclient.APIError
	if !errors.As(err, &ae) {
		return false
	}
	return ae.Class == "queue_full" || ae.Class == "draining"
}

// terminalSubmitError reports a decided, non-retryable API reply to the
// submit itself (malformed request, idempotency conflict, …): the job
// fails with that error rather than being re-dispatched.
func terminalSubmitError(err error) bool {
	var ae *serverclient.APIError
	if !errors.As(err, &ae) {
		return false
	}
	return !ae.Retryable()
}

// awaitResult polls the node for the remote job's outcome.
func (c *Coordinator) awaitResult(j *cjob, n *node, gen int64, remoteID string) (*jobs.Result, error) {
	for {
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		res, err := n.client.Result(j.ctx, remoteID)
		if err == nil {
			c.recordCompletion(j, n)
			return res, nil
		}
		switch classifyAwait(err) {
		case awaitPoll:
			// Not ready, or a transient fault/reply; keep polling unless
			// the prober has declared the node lost — then try to salvage
			// the result before re-dispatching.
			if n.lostSince(gen) {
				if res, ok := c.tryRecover(j, n, remoteID); ok {
					c.recordCompletion(j, n)
					return res, nil
				}
				return nil, errNodeLost
			}
		case awaitGone:
			// The node answered and does not have the job (restart lost
			// it, or it was swept): re-dispatch without a recovery
			// attempt — the node itself just said there is nothing to
			// recover.
			return nil, errNodeLost
		case awaitTerminal:
			// The remote job's own decided outcome (rejected, malformed,
			// canceled, deadline, internal error). Re-proving elsewhere
			// would either fail identically or double-prove a job whose
			// invocation already counted; the cluster job inherits the
			// outcome.
			return nil, err
		}
		if !sleepCtx(j.ctx, c.cfg.PollInterval) {
			return nil, j.ctx.Err()
		}
	}
}

// Await-poll classification buckets.
const (
	awaitPoll = iota
	awaitGone
	awaitTerminal
)

func classifyAwait(err error) int {
	if errors.Is(err, serverclient.ErrNotReady) {
		return awaitPoll
	}
	var ae *serverclient.APIError
	if !errors.As(err, &ae) {
		// Transport fault or breaker open: the fetch, not the job,
		// failed.
		return awaitPoll
	}
	switch {
	case ae.StatusCode == http.StatusNotFound:
		return awaitGone
	case ae.Class == "draining":
		// The remote job was swept out of the queue by a drain without
		// ever reaching the prover; it is safe and necessary to place it
		// again.
		return awaitGone
	case ae.StatusCode == http.StatusTooManyRequests,
		ae.StatusCode == http.StatusServiceUnavailable,
		ae.StatusCode == http.StatusBadGateway:
		// Injected blips and backpressure on the *fetch*: transient.
		return awaitPoll
	default:
		return awaitTerminal
	}
}

// tryRecover makes one bounded attempt to fetch the finished result
// from a node that was just declared lost. If the node was ejected
// spuriously (alive but unreachable-to-probes) and the proof completed,
// this salvages it — the cheapest possible failover, and one fewer
// wasted prove invocation.
func (c *Coordinator) tryRecover(j *cjob, n *node, remoteID string) (*jobs.Result, bool) {
	rctx, cancel := context.WithTimeout(j.ctx, c.cfg.RecoverTimeout)
	defer cancel()
	res, err := n.client.Result(rctx, remoteID)
	if err != nil {
		return nil, false
	}
	c.met.recovered.Add(1)
	return res, true
}

// recordCompletion pins which node (and epoch) actually produced the
// job's result — surfaced on status, and the anchor for the soak's
// exactly-once accounting.
func (c *Coordinator) recordCompletion(j *cjob, n *node) {
	n.mu.Lock()
	id := n.nodeID
	n.mu.Unlock()
	j.mu.Lock()
	j.doneNodeURL = n.url
	j.doneNodeID = id
	j.mu.Unlock()
}

// cancelRemote best-effort cancels the job's attributed remote job,
// bounded so shutdown cannot hang on a dead node. It runs outside the
// job's (already ended) context.
func (c *Coordinator) cancelRemote(j *cjob) {
	j.mu.Lock()
	n, remoteID := j.node, j.remoteID
	j.mu.Unlock()
	if n == nil || remoteID == "" {
		return
	}
	cctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = n.client.Cancel(cctx, remoteID)
}
