package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"unizk/internal/faultinject/netchaos"
	"unizk/internal/jobs"
	"unizk/internal/server"
	"unizk/internal/serverclient"
)

// TestClusterChaosSoak is the acceptance scenario for the fault-tolerant
// cluster: three real prover nodes, each behind its own seeded
// fault-injecting listener, fronted by a coordinator whose node links
// also run through seeded chaos — while concurrent retrying clients
// drive real proof jobs (one request shared under a single idempotency
// key) and node 0 is hard-killed mid-load and restarted on the same
// address.
//
// Invariants pinned:
//   - every job eventually yields a proof bit-identical to a direct,
//     clusterless prove of the same request, kill and all;
//   - clients sharing an idempotency key converge on one cluster job;
//   - exactly-once proving, accounted exactly across node *epochs*:
//     summing ProveInvocations over every epoch (including the killed
//     one, snapshotted post-mortem), the surplus over unique cluster
//     jobs can only be work the kill orphaned — never more than the
//     killed epoch started, and zero across the surviving epochs;
//   - the kill was actually felt: the coordinator detected the epoch
//     change and re-dispatched at least one job;
//   - after drain + close, the goroutine count settles: nothing leaks.
//
// The seed is fixed, so the fault schedule (up to goroutine
// interleaving) reproduces.
func TestClusterChaosSoak(t *testing.T) {
	const (
		seed       = 20250807
		numNodes   = 3
		numClients = 4
		jobsEach   = 4
		killDelay  = 600 * time.Millisecond
		downFor    = 300 * time.Millisecond
	)
	before := runtime.NumGoroutine()
	nodeCfg := server.Config{QueueCap: 64, MaxInFlight: 2}

	// One seeded injector per node, wrapping its listener; a separate
	// injector sits on the coordinator's node links. Probabilities are
	// moderate: the probe/dispatch loops must make progress while every
	// exchange risks a reset, a truncation, a blip, or latency.
	chaosFor := func(i int64) *netchaos.Chaos {
		return netchaos.New(netchaos.Config{
			Seed:            seed + i,
			AcceptDelayProb: 0.05,
			ConnDelayProb:   0.02,
			ConnResetProb:   0.01,
			MaxDelay:        2 * time.Millisecond,
			ReqResetProb:    0.08,
			TruncateProb:    0.08,
			BlipProb:        0.08,
		})
	}

	type liveNode struct {
		srv   *server.Server
		hs    *http.Server
		addr  string
		chaos *netchaos.Chaos
	}
	start := func(chaos *netchaos.Chaos, ln net.Listener) *liveNode {
		s := server.New(nodeCfg)
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(chaos.WrapListener(ln)) }()
		return &liveNode{srv: s, hs: hs, addr: ln.Addr().String(), chaos: chaos}
	}
	var nodes []*liveNode
	var urls []string
	for i := 0; i < numNodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := start(chaosFor(int64(i)), ln)
		nodes = append(nodes, n)
		urls = append(urls, "http://"+n.addr)
	}

	linkChaos := chaosFor(100)
	innerRT := &http.Transport{}
	coord, err := New(Config{
		Nodes:         urls,
		ProbeInterval: 25 * time.Millisecond,
		// Conservative staleness: the planned outage (downFor) is well
		// under StaleAfter, so the kill must be caught by the epoch
		// change, and chaos alone must never eject a live node.
		StaleAfter:           time.Second,
		PollInterval:         10 * time.Millisecond,
		RecoverTimeout:       300 * time.Millisecond,
		NodeFailureThreshold: 4,
		NodeOpenTimeout:      50 * time.Millisecond,
		NodeMaxAttempts:      4,
		NodeBaseDelay:        5 * time.Millisecond,
		NodeMaxDelay:         100 * time.Millisecond,
		Seed:                 seed,
		Transport:            linkChaos.WrapTransport(innerRT),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	waitHealthy(t, coord, numNodes)

	// The work matrix: per-client keys plus one request shared by every
	// client under one key, which must converge on a single cluster job.
	// LogRows spread keeps several proofs long enough to straddle the
	// kill while staying affordable under the race detector on a
	// single-core CI host.
	shared := &jobs.Request{Kind: jobs.KindStark, Workload: "Fibonacci", LogRows: 5,
		IdempotencyKey: "csoak-shared"}
	workloads := []string{"Fibonacci", "Factorial", "SHA-256"}
	kinds := []jobs.Kind{jobs.KindPlonk, jobs.KindStark}
	request := func(client, n int) *jobs.Request {
		if n == 0 {
			return shared
		}
		return &jobs.Request{
			Kind:           kinds[(client+n)%len(kinds)],
			Workload:       workloads[(client*jobsEach+n)%len(workloads)],
			LogRows:        8 + (client+n)%3,
			IdempotencyKey: fmt.Sprintf("csoak-c%d-n%d", client, n),
		}
	}

	type proven struct {
		req   *jobs.Request
		id    string
		proof []byte
	}
	results := make([][]proven, numClients)
	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	for ci := 0; ci < numClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := serverclient.New(ts.URL)
			c.Retry = &serverclient.RetryPolicy{
				MaxAttempts: 6,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				Seed:        seed + int64(ci) + 1,
			}
			for n := 0; n < jobsEach; n++ {
				req := request(ci, n)
				id, ok := soakSubmit(t, ctx, c, ci, n, req)
				if !ok {
					return
				}
				proof, ok := soakAwait(t, ctx, c, ci, n, id)
				if !ok {
					return
				}
				results[ci] = append(results[ci], proven{req: req, id: id, proof: proof})
			}
		}(ci)
	}

	// The kill/restart cycle: node 0 dies hard mid-load — listener and
	// connections torn down, in-flight proves force-canceled — stays
	// dark for less than StaleAfter, and a fresh process reclaims the
	// same address. Only the healthz epoch change can tell the
	// coordinator what happened.
	killedSrv := nodes[0].srv
	var killedInv int64
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		time.Sleep(killDelay)
		n := nodes[0]
		_ = n.hs.Close()
		kctx, kcancel := context.WithCancel(context.Background())
		kcancel()
		_ = n.srv.Shutdown(kctx)
		killedInv = killedSrv.Metrics().ProveInvocations

		time.Sleep(downFor)
		deadline := time.Now().Add(10 * time.Second)
		for {
			ln, err := net.Listen("tcp", n.addr)
			if err == nil {
				nodes[0] = start(n.chaos, ln)
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("re-listen on %s: %v", n.addr, err)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	wg.Wait()
	<-killDone
	if t.Failed() {
		t.FailNow()
	}

	// Bit-identical to direct proving, and same-id results agree.
	direct := map[string][]byte{}
	byID := map[string][]byte{}
	total := 0
	for ci, rs := range results {
		if len(rs) != jobsEach {
			t.Fatalf("client %d finished %d/%d jobs", ci, len(rs), jobsEach)
		}
		for _, r := range rs {
			total++
			sig := fmt.Sprintf("%s|%s|%d", r.req.Kind, r.req.Workload, r.req.LogRows)
			want, ok := direct[sig]
			if !ok {
				d, err := jobs.Execute(context.Background(), r.req)
				if err != nil {
					t.Fatalf("direct prove %s: %v", sig, err)
				}
				want = d.Proof
				direct[sig] = want
			}
			if !bytes.Equal(r.proof, want) {
				t.Fatalf("client %d job %s (%s): proof differs from direct prove", ci, r.id, sig)
			}
			if prev, ok := byID[r.id]; ok && !bytes.Equal(prev, r.proof) {
				t.Fatalf("job %s returned different proof bytes to different clients", r.id)
			}
			byID[r.id] = r.proof
		}
	}
	if total != numClients*jobsEach {
		t.Fatalf("completed %d jobs, want %d", total, numClients*jobsEach)
	}

	// The shared key converged on one cluster job for all clients.
	sharedIDs := map[string]bool{}
	for _, rs := range results {
		sharedIDs[rs[0].id] = true
	}
	if len(sharedIDs) != 1 {
		t.Fatalf("shared idempotency key mapped to %d cluster jobs: %v", len(sharedIDs), sharedIDs)
	}

	// Duplicate-work accounting across node epochs. Each dispatch of a
	// job to a node carries the job's stable node-level idempotency key,
	// so one node process never proves the same job twice no matter how
	// many times the submit is retried against it. Surplus invocations
	// therefore require abandoning a node — every one is paid for by a
	// recorded re-dispatch (the kill, or a spurious ejection when chaos
	// plus a starved scheduler eat probes for a whole StaleAfter
	// window). The sound sandwich: unique ≤ all-epoch invocations ≤
	// unique + re-dispatches, with re-dispatches themselves small.
	cm := coord.Metrics()
	uniqueJobs := int64(len(byID))
	var liveInv int64
	for _, n := range nodes {
		liveInv += n.srv.Metrics().ProveInvocations
	}
	allInv := liveInv + killedInv
	if allInv < uniqueJobs {
		t.Fatalf("invocations across all epochs = %d < %d unique jobs — a proof came from nowhere",
			allInv, uniqueJobs)
	}
	waste := allInv - uniqueJobs
	if waste > cm.Redispatches {
		t.Fatalf("wasted invocations %d exceed the %d recorded re-dispatches — a node proved a job it was never re-dispatched away from (live=%d killed=%d unique=%d)",
			waste, cm.Redispatches, liveInv, killedInv, uniqueJobs)
	}
	if cm.Redispatches >= 2*uniqueJobs {
		t.Fatalf("re-dispatch storm: %d re-dispatches for %d unique jobs", cm.Redispatches, uniqueJobs)
	}
	if cm.EpochChanges == 0 {
		t.Fatalf("coordinator never saw the restart (metrics %+v)", cm)
	}
	if cm.Redispatches == 0 && waste == 0 && cm.Recovered == 0 {
		// The kill must have been felt somehow: jobs moved, results were
		// salvaged, or invocations were orphaned.
		t.Logf("warning: kill left no visible failover trace (timing landed between jobs)")
	}
	if cm.IdempotentHits < int64(numClients-1) {
		t.Fatalf("idempotent hits = %d, want ≥%d from the shared key", cm.IdempotentHits, numClients-1)
	}
	var chaosTotal int64
	for _, n := range nodes {
		chaosTotal += n.chaos.Stats().Total()
	}
	chaosTotal += linkChaos.Stats().Total()
	if chaosTotal == 0 {
		t.Fatal("chaos injected no faults; the soak proved nothing")
	}
	t.Logf("soak: unique jobs %d, invocations live=%d killed-epoch=%d (waste %d), redispatches=%d recovered=%d epoch-changes=%d ejections=%d idem-hits=%d chaos=%d",
		uniqueJobs, liveInv, killedInv, waste, cm.Redispatches, cm.Recovered,
		cm.EpochChanges, cm.Ejections, cm.IdempotentHits, chaosTotal)

	// Drain everything and require the goroutine count to settle.
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := coord.Shutdown(sctx); err != nil {
		t.Fatalf("coordinator drain after soak: %v", err)
	}
	ts.Close()
	for _, n := range nodes {
		if err := n.srv.Shutdown(sctx); err != nil {
			t.Fatalf("node drain after soak: %v", err)
		}
		_ = n.hs.Close()
	}
	innerRT.CloseIdleConnections()
	settleGoroutines(t, before)
}

// soakSubmit retries a submission until it is admitted (or attached to
// an existing job). Any non-retryable error is a bug and fails the
// test.
func soakSubmit(t *testing.T, ctx context.Context, c *serverclient.Client, ci, n int, req *jobs.Request) (string, bool) {
	for {
		reply, err := c.SubmitDetail(ctx, req, serverclient.Options{})
		if err == nil {
			return reply.ID, true
		}
		if !soakRetryable(err) {
			t.Errorf("client %d job %d: submit failed with unclassified/terminal error: %v", ci, n, err)
			return "", false
		}
		select {
		case <-ctx.Done():
			t.Errorf("client %d job %d: soak deadline during submit (last: %v)", ci, n, err)
			return "", false
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// soakAwait retries result polling until the proof arrives.
func soakAwait(t *testing.T, ctx context.Context, c *serverclient.Client, ci, n int, id string) ([]byte, bool) {
	for {
		res, err := c.Wait(ctx, id)
		if err == nil {
			return res.Proof, true
		}
		if !soakRetryable(err) {
			t.Errorf("client %d job %d (%s): wait failed with unclassified/terminal error: %v", ci, n, id, err)
			return nil, false
		}
		select {
		case <-ctx.Done():
			t.Errorf("client %d job %d (%s): soak deadline during wait (last: %v)", ci, n, id, err)
			return nil, false
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// soakRetryable is the client-side classification: everything the
// cluster can legitimately answer under chaos and failover must land in
// one of these buckets; anything else fails the soak.
func soakRetryable(err error) bool {
	var te *serverclient.TransportError
	if errors.As(err, &te) {
		return true
	}
	var ae *serverclient.APIError
	if errors.As(err, &ae) {
		return ae.Retryable()
	}
	return errors.Is(err, serverclient.ErrCircuitOpen)
}

// settleGoroutines waits for the goroutine count to return near its
// pre-soak level; a leaked watcher, prober, or poller fails here.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
