package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"unizk/internal/faultinject/netchaos"
	"unizk/internal/jobs"
	"unizk/internal/server"
	"unizk/internal/serverclient"
	"unizk/internal/tenant"
)

// TestClusterCacheSoak is the cluster-topology half of the cache-soak
// gate: distinct-tenant clients hammer the same request contents (no
// idempotency keys) through a 3-node cluster whose node listeners and
// coordinator links all inject faults. The coordinator's
// content-addressed cache must hold the whole cluster to one prove per
// unique content — any surplus must be paid for by a recorded
// re-dispatch — every proof must be bit-identical to a direct prove, a
// starved tenant must be rejected 429 at the cluster edge without
// touching the others, and everything must unwind without goroutine
// leaks under the race detector.
func TestClusterCacheSoak(t *testing.T) {
	const (
		seed       = 20250808
		numNodes   = 3
		numClients = 4
		numRepeats = 2
	)
	before := runtime.NumGoroutine()
	nodeCfg := server.Config{QueueCap: 64, MaxInFlight: 2}

	chaosFor := func(i int64) *netchaos.Chaos {
		return netchaos.New(netchaos.Config{
			Seed:            seed + i,
			AcceptDelayProb: 0.05,
			ConnDelayProb:   0.02,
			ConnResetProb:   0.01,
			MaxDelay:        2 * time.Millisecond,
			ReqResetProb:    0.08,
			TruncateProb:    0.08,
			BlipProb:        0.08,
		})
	}

	type liveNode struct {
		srv *server.Server
		hs  *http.Server
	}
	var nodes []*liveNode
	var chaoses []*netchaos.Chaos
	var urls []string
	for i := 0; i < numNodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		chaos := chaosFor(int64(i))
		s := server.New(nodeCfg)
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(chaos.WrapListener(ln)) }()
		nodes = append(nodes, &liveNode{srv: s, hs: hs})
		chaoses = append(chaoses, chaos)
		urls = append(urls, "http://"+ln.Addr().String())
	}

	tcfgs := make([]tenant.Config, 0, numClients+1)
	for i := 0; i < numClients; i++ {
		tcfgs = append(tcfgs, tenant.Config{
			Name: fmt.Sprintf("t%d", i), Key: fmt.Sprintf("t%d-key", i),
		})
	}
	tcfgs = append(tcfgs, tenant.Config{
		Name: "starved", Key: "starved-key", Rate: 0.0001, Burst: 1,
	})
	reg, err := tenant.NewRegistry(tcfgs...)
	if err != nil {
		t.Fatal(err)
	}

	linkChaos := chaosFor(100)
	innerRT := &http.Transport{}
	coord, err := New(Config{
		Nodes:                urls,
		ProbeInterval:        25 * time.Millisecond,
		StaleAfter:           time.Second,
		PollInterval:         10 * time.Millisecond,
		RecoverTimeout:       300 * time.Millisecond,
		NodeFailureThreshold: 4,
		NodeOpenTimeout:      50 * time.Millisecond,
		NodeMaxAttempts:      4,
		NodeBaseDelay:        5 * time.Millisecond,
		NodeMaxDelay:         100 * time.Millisecond,
		Seed:                 seed,
		Transport:            linkChaos.WrapTransport(innerRT),
		CacheEntries:         64,
		CacheVerify:          true,
		Tenants:              reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	waitHealthy(t, coord, numNodes)

	contents := []*jobs.Request{
		{Kind: jobs.KindPlonk, Workload: "Fibonacci", LogRows: 5},
		{Kind: jobs.KindStark, Workload: "Factorial", LogRows: 5},
		{Kind: jobs.KindStark, Workload: "Fibonacci", LogRows: 4},
	}
	var baseInv int64
	for _, n := range nodes {
		baseInv += n.srv.Metrics().ProveInvocations
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	proofs := make([][][]byte, numClients)
	var wg sync.WaitGroup
	for ci := 0; ci < numClients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := serverclient.New(ts.URL)
			c.APIKey = fmt.Sprintf("t%d-key", ci)
			c.Retry = &serverclient.RetryPolicy{
				MaxAttempts: 6,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				Seed:        seed + int64(ci) + 1,
			}
			for rep := 0; rep < numRepeats; rep++ {
				for n, req := range contents {
					id, ok := soakSubmit(t, ctx, c, ci, n, req)
					if !ok {
						return
					}
					var proof []byte
					if ci%2 == 0 {
						proof, ok = soakAwait(t, ctx, c, ci, n, id)
					} else {
						proof, ok = clusterSoakAwaitStream(t, ctx, c, ci, n, id)
					}
					if !ok {
						return
					}
					proofs[ci] = append(proofs[ci], proof)
				}
			}
		}(ci)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	want := make([][]byte, len(contents))
	for n, req := range contents {
		want[n] = directProof(t, req)
	}
	for ci, ps := range proofs {
		if len(ps) != numRepeats*len(contents) {
			t.Fatalf("client %d finished %d/%d submissions", ci, len(ps), numRepeats*len(contents))
		}
		for i, p := range ps {
			if !bytes.Equal(p, want[i%len(contents)]) {
				t.Fatalf("client %d submission %d: proof differs from direct prove", ci, i)
			}
		}
	}

	// Exactly-once across the cluster: one prove per unique content,
	// with any surplus paid for by a recorded re-dispatch (a node
	// abandoned mid-prove after chaos ate a whole probe window).
	cm := coord.Metrics()
	var inv int64
	for _, n := range nodes {
		inv += n.srv.Metrics().ProveInvocations
	}
	inv -= baseInv
	if inv < int64(len(contents)) {
		t.Fatalf("node prove invocations %d < %d unique contents — a proof came from nowhere",
			inv, len(contents))
	}
	if waste := inv - int64(len(contents)); waste > cm.Redispatches {
		t.Fatalf("wasted invocations %d exceed %d recorded re-dispatches (inv=%d contents=%d)",
			waste, cm.Redispatches, inv, len(contents))
	}
	if cm.CacheInserted < int64(len(contents)) {
		t.Fatalf("coordinator cache inserted %d, want ≥%d", cm.CacheInserted, len(contents))
	}
	total := int64(numClients * numRepeats * len(contents))
	if cm.CacheHits+cm.CacheCoalesced < total-cm.CacheInserted {
		t.Fatalf("cache hits %d + coalesced %d < %d non-leader submissions",
			cm.CacheHits, cm.CacheCoalesced, total-cm.CacheInserted)
	}

	// The starved tenant is rejected at the cluster edge: submitting
	// already-cached content, it runs out of tokens and sees 429
	// rate_limited naming itself with a computed Retry-After.
	starved := serverclient.New(ts.URL)
	starved.APIKey = "starved-key"
	var apiErr *serverclient.APIError
	deadline := time.Now().Add(time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("starved tenant never hit its rate limit")
		}
		_, err := starved.SubmitDetail(ctx, contents[0], serverclient.Options{})
		if err == nil {
			continue
		}
		var te *serverclient.TransportError
		if errors.As(err, &te) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if !errors.As(err, &apiErr) {
			t.Fatalf("starved submit: unclassified error %v", err)
		}
		break
	}
	if apiErr.StatusCode != http.StatusTooManyRequests ||
		apiErr.Class != tenant.ReasonRateLimited ||
		apiErr.Tenant != "starved" || apiErr.RetryAfter < time.Second {
		t.Fatalf("starved rejection = %+v, want 429 rate_limited/starved with Retry-After", apiErr)
	}
	cm = coord.Metrics()
	if cm.RejectedRateLimited == 0 {
		t.Fatalf("starved rejections uncounted (metrics %+v)", cm)
	}
	roster := map[string]serverclient.TenantMetrics{}
	for _, row := range cm.Tenants {
		roster[row.Name] = row
	}
	if roster["starved"].RateLimited == 0 || roster["t0"].Admitted == 0 {
		t.Fatalf("tenant roster = %+v", cm.Tenants)
	}

	var chaosTotal int64
	for _, ch := range chaoses {
		chaosTotal += ch.Stats().Total()
	}
	chaosTotal += linkChaos.Stats().Total()
	if chaosTotal == 0 {
		t.Fatal("chaos injected no faults; the soak proved nothing")
	}
	t.Logf("cluster cache soak: invocations %d for %d contents, cache hits %d coalesced %d inserted %d, redispatches %d, rate-limited %d, chaos %d",
		inv, len(contents), cm.CacheHits, cm.CacheCoalesced, cm.CacheInserted,
		cm.Redispatches, cm.RejectedRateLimited, chaosTotal)

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := coord.Shutdown(sctx); err != nil {
		t.Fatalf("coordinator drain after soak: %v", err)
	}
	ts.Close()
	for i, n := range nodes {
		if err := n.srv.Shutdown(sctx); err != nil {
			t.Fatalf("node %d drain after soak: %v", i, err)
		}
		_ = n.hs.Close()
	}
	innerRT.CloseIdleConnections()
	settleGoroutines(t, before)
}

// clusterSoakAwaitStream retries WaitStream until the proof arrives —
// the SSE path with its long-poll and plain-poll fallbacks, under the
// same chaos and error classification as soakAwait.
func clusterSoakAwaitStream(t *testing.T, ctx context.Context, c *serverclient.Client, ci, n int, id string) ([]byte, bool) {
	for {
		res, err := c.WaitStream(ctx, id, nil)
		if err == nil {
			return res.Proof, true
		}
		if !soakRetryable(err) {
			t.Errorf("client %d job %d (%s): stream wait failed with unclassified/terminal error: %v", ci, n, id, err)
			return nil, false
		}
		select {
		case <-ctx.Done():
			t.Errorf("client %d job %d (%s): soak deadline during stream wait (last: %v)", ci, n, id, err)
			return nil, false
		case <-time.After(10 * time.Millisecond):
		}
	}
}
