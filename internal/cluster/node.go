// Node handles: one per prover node, holding the serverclient stack
// (breaker + seeded retry) the coordinator talks through, the probed
// health/load picture, and the generation counter that invalidates job
// attributions when the node dies or restarts.
package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"unizk/internal/serverclient"
)

type node struct {
	url     string
	client  *serverclient.Client
	breaker *serverclient.Breaker
	retry   *serverclient.RetryPolicy

	mu sync.Mutex
	// probed flips true on the first successful probe and never back: an
	// address that has never answered is "unknown", not "ejected", and
	// cannot hold attributions worth invalidating.
	//unizklint:guardedby mu
	probed bool
	//unizklint:guardedby mu
	ejected bool
	// draining mirrors the node's own /healthz drain state; a draining
	// node finishes what it has but must not receive new placements.
	//unizklint:guardedby mu
	draining bool
	// gen bumps whenever in-flight attributions to this node become
	// invalid: on ejection and on epoch change. A job dispatched at
	// generation g is lost once n.gen > g.
	//unizklint:guardedby mu
	gen int64
	//unizklint:guardedby mu
	lastOK time.Time
	//unizklint:guardedby mu
	lastErr error

	// Epoch identity from /healthz.
	//unizklint:guardedby mu
	nodeID string
	//unizklint:guardedby mu
	startNS int64

	// Probed load signals (healthz + /metrics).
	//unizklint:guardedby mu
	inFlight int64
	//unizklint:guardedby mu
	queued int
	//unizklint:guardedby mu
	queueWaitP50 float64
	//unizklint:guardedby mu
	proveP50 float64
	//unizklint:guardedby mu
	proveInvocations int64
	//unizklint:guardedby mu
	completed int64

	// outstanding counts cluster jobs currently dispatched to this node
	// by this coordinator — the placement signal that reacts instantly,
	// between probe ticks.
	//unizklint:guardedby mu
	outstanding int
	// saturatedUntil backs off placement after the node refused a submit
	// with queue-full backpressure.
	//unizklint:guardedby mu
	saturatedUntil time.Time

	// Lifetime transition counters for cluster metrics.
	//unizklint:guardedby mu
	ejections int64
	//unizklint:guardedby mu
	readmissions int64
	//unizklint:guardedby mu
	epochChanges int64
}

func newNode(baseURL string, index int, cfg Config) *node {
	br := &serverclient.Breaker{
		FailureThreshold: cfg.NodeFailureThreshold,
		OpenTimeout:      cfg.NodeOpenTimeout,
	}
	rp := &serverclient.RetryPolicy{
		MaxAttempts: cfg.NodeMaxAttempts,
		BaseDelay:   cfg.NodeBaseDelay,
		MaxDelay:    cfg.NodeMaxDelay,
		// Per-node seeds derive from the cluster seed so soaks are
		// reproducible but nodes do not retry in lockstep.
		Seed: cfg.Seed + int64(index)*7919,
	}
	if cfg.Seed == 0 {
		rp.Seed = 0
	}
	hc := http.DefaultClient
	if cfg.Transport != nil {
		hc = &http.Client{Transport: cfg.Transport}
	}
	return &node{
		url:     baseURL,
		breaker: br,
		retry:   rp,
		client: &serverclient.Client{
			BaseURL:      baseURL,
			HTTPClient:   hc,
			PollInterval: cfg.PollInterval,
			Retry:        rp,
			Breaker:      br,
		},
	}
}

// generation returns the node's current attribution generation.
func (n *node) generation() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gen
}

// lostSince reports whether attributions made at generation g are now
// invalid: the node was ejected or changed epoch since the dispatch.
func (n *node) lostSince(g int64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gen > g
}

// healthy reports admission-level eligibility: the node has answered at
// least one probe, is not ejected, and is not draining. Saturation
// backoff deliberately does not count — a briefly-full node is healthy,
// and admission must not 503 because of it.
func (n *node) healthy() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.probed && !n.ejected && !n.draining
}

// placeable reports placement-level eligibility: healthy and not inside
// a saturation backoff window.
func (n *node) placeable(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.probed && !n.ejected && !n.draining && !now.Before(n.saturatedUntil)
}

// score is the least-loaded placement key: work the node already has
// (probed queue depth + in-flight) plus work this coordinator has
// dispatched there that the probes may not reflect yet. Lower is
// better; ties break by node order for determinism.
func (n *node) score() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queued + int(n.inFlight) + n.outstanding
}

func (n *node) addOutstanding(d int) {
	n.mu.Lock()
	n.outstanding += d
	n.mu.Unlock()
}

// markSaturated starts a placement backoff window after the node
// refused a submit with queue-full backpressure.
func (n *node) markSaturated(d time.Duration) {
	n.mu.Lock()
	n.saturatedUntil = time.Now().Add(d)
	n.mu.Unlock()
}

func (n *node) proveLatencyP50() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.proveP50
}

// probeLoop drives one node's health/load probes until the coordinator
// shuts down. The first probe fires immediately so WaitReady clears as
// soon as the nodes answer.
func (c *Coordinator) probeLoop(n *node) {
	defer c.probers.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		c.probe(n)
		select {
		case <-c.base.Done():
			return
		case <-t.C:
		}
	}
}

// probe performs one health+metrics exchange against the node and folds
// the outcome into its state: readmission on success after ejection,
// epoch-change detection when the node identity moved, ejection once
// failures have persisted past StaleAfter.
func (c *Coordinator) probe(n *node) {
	pctx, cancel := context.WithTimeout(c.base, c.cfg.ProbeTimeout)
	defer cancel()

	h, status, err := n.client.HealthAny(pctx)
	now := time.Now()
	if err != nil {
		n.mu.Lock()
		n.lastErr = err
		// Ejection is edge-triggered and conservative: only a node that
		// was once healthy can be ejected, and only after its probes have
		// been failing for longer than StaleAfter — transient chaos
		// (resets, latency spikes) must not strand its in-flight jobs.
		eject := n.probed && !n.ejected && now.Sub(n.lastOK) > c.cfg.StaleAfter
		if eject {
			n.ejected = true
			n.gen++
			n.ejections++
		}
		n.mu.Unlock()
		if eject {
			c.met.ejections.Add(1)
		}
		return
	}

	var epochChanged, readmitted bool
	n.mu.Lock()
	if n.probed && (n.nodeID != h.NodeID || n.startNS != h.StartNS) {
		// Same address, different process: the node restarted and lost
		// its in-memory jobs. Everything attributed to the old epoch is
		// gone even though the address answers.
		epochChanged = true
		n.gen++
		n.epochChanges++
	}
	if n.ejected {
		n.ejected = false
		n.readmissions++
		readmitted = true
	}
	n.probed = true
	n.nodeID, n.startNS = h.NodeID, h.StartNS
	n.lastOK = now
	n.lastErr = nil
	n.draining = h.Status == "draining" || status == 503
	n.inFlight, n.queued = h.InFlight, h.Queued
	n.mu.Unlock()
	if epochChanged {
		c.met.epochChanges.Add(1)
	}
	if readmitted {
		c.met.readmissions.Add(1)
	}

	// Load detail is best-effort: the healthz probe alone keeps the node
	// routable, a failed metrics fetch only staleness placement signals.
	if m, merr := n.client.Metrics(pctx); merr == nil {
		n.mu.Lock()
		n.inFlight, n.queued = m.InFlight, m.Queued
		n.queueWaitP50 = m.QueueWaitP50MS
		n.proveP50 = m.ProveLatencyP50MS
		n.proveInvocations = m.ProveInvocations
		n.completed = m.Completed
		n.mu.Unlock()
	}
}
