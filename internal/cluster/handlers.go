// The coordinator's HTTP API — deliberately the same surface a single
// unizk-server exposes (submit/status/proof/cancel/sync-prove/healthz/
// metrics, same wire encodings, same error classes), so serverclient
// and cmd/prove -remote point at a cluster without knowing it is one.
// Cluster-specific signals ride in extension fields (node attribution
// on status, the roster on /metrics).
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"unizk/internal/jobs"
	"unizk/internal/prooferr"
	"unizk/internal/server"
	"unizk/internal/serverclient"
	"unizk/internal/tenant"
)

func (c *Coordinator) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/proof", c.handleProof)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", c.handleCancel)
	mux.HandleFunc("POST /v1/prove", c.handleProveSync)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// statusForCluster maps an error to (HTTP status, class), extending the
// node taxonomy with the coordinator's own refusal classes. An APIError
// passed through from a node keeps its original status and class — the
// cluster must not re-map a decided outcome.
func statusForCluster(err error) (int, string) {
	switch {
	case errors.Is(err, ErrNoHealthyNodes):
		return http.StatusServiceUnavailable, "no_healthy_nodes"
	case errors.Is(err, ErrSaturated):
		return http.StatusServiceUnavailable, "cluster_saturated"
	}
	var ae *serverclient.APIError
	if errors.As(err, &ae) {
		return ae.StatusCode, ae.Class
	}
	return server.StatusFor(err)
}

func (c *Coordinator) writeError(w http.ResponseWriter, err error) {
	status, class := statusForCluster(err)
	body := serverclient.ErrorBody{Error: err.Error(), Class: class}
	var limit *tenant.LimitError
	switch {
	case errors.As(err, &limit):
		// Tenant rejections carry their own computed Retry-After (token
		// refill or quota estimate) and name the rejected tenant.
		body.Tenant = limit.Tenant
		body.RetryAfterSeconds = ceilSeconds(limit.RetryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfterSeconds))
	case server.RetryableStatus(status):
		body.RetryAfterSeconds = c.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(body.RetryAfterSeconds))
	}
	writeJSON(w, status, body)
}

// ceilSeconds rounds a duration up to whole seconds, minimum 1.
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// authenticate resolves the request's tenant from its API key; unknown
// keys are counted and rejected with 401.
func (c *Coordinator) authenticate(r *http.Request) (*tenant.Tenant, error) {
	tn, err := c.tenants.Authenticate(server.APIKey(r))
	if err != nil {
		c.met.rejectedUnauth.Add(1)
	}
	return tn, err
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already committed
}

// decodeSubmit reads and validates the submit body and options, shared
// by the async and sync endpoints (mirrors the node-side parsing so
// error behavior is identical).
func (c *Coordinator) decodeSubmit(r *http.Request) (*jobs.Request, int, time.Duration, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("reading request body: %v: %w: %w",
			err, jobs.ErrBadRequest, prooferr.ErrMalformedProof)
	}
	req := new(jobs.Request)
	if err := req.UnmarshalBinary(body); err != nil {
		return nil, 0, 0, err
	}
	priority := 0
	if p := r.URL.Query().Get("priority"); p != "" {
		priority, err = strconv.Atoi(p)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("bad priority %q: %w: %w",
				p, jobs.ErrBadRequest, prooferr.ErrMalformedProof)
		}
	}
	var timeout time.Duration
	if d := r.URL.Query().Get("timeout"); d != "" {
		timeout, err = time.ParseDuration(d)
		if err != nil || timeout < 0 {
			return nil, 0, 0, fmt.Errorf("bad timeout %q: %w: %w",
				d, jobs.ErrBadRequest, prooferr.ErrMalformedProof)
		}
	}
	return req, priority, timeout, nil
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tn, err := c.authenticate(r)
	if err != nil {
		c.writeError(w, err)
		return
	}
	req, priority, timeout, err := c.decodeSubmit(r)
	if err != nil {
		c.writeError(w, err)
		return
	}
	j, how, err := c.admit(req, priority, timeout, tn)
	if err != nil {
		c.writeError(w, err)
		return
	}
	state := cstateQueued
	if how != admitFresh {
		// An attach (idempotency, cache, coalesce) may land on a job in
		// any state; report the one it is actually in.
		state, _, _, _ = j.snapshot()
	}
	writeJSON(w, http.StatusAccepted, serverclient.SubmitReply{
		ID:           j.id,
		State:        state.String(),
		StatusURL:    "/v1/jobs/" + j.id,
		Deduplicated: how == admitDeduped,
		Cached:       how == admitCachedHit,
		Coalesced:    how == admitCoalesced,
	})
}

func (c *Coordinator) handleProveSync(w http.ResponseWriter, r *http.Request) {
	tn, err := c.authenticate(r)
	if err != nil {
		c.writeError(w, err)
		return
	}
	req, priority, timeout, err := c.decodeSubmit(r)
	if err != nil {
		c.writeError(w, err)
		return
	}
	j, how, err := c.admit(req, priority, timeout, tn)
	if err != nil {
		c.writeError(w, err)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Disconnect cancels only a job this request admitted; an
		// attached job (idempotency, cache, coalesce) belongs to its
		// original submitter, and canceling it here would fail every
		// other waiter.
		if how == admitFresh {
			j.cancel()
			<-j.done
		}
	}
	res, err := j.result()
	if err != nil {
		c.writeError(w, err)
		return
	}
	raw, err := res.MarshalBinary()
	if err != nil {
		c.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Unizk-Job-Id", j.id)
	_, _ = w.Write(raw)
}

// ClusterJobStatus is serverclient.JobStatus plus the coordinator's
// placement trail. Plain serverclient users decode the embedded subset
// and never see the extras.
type ClusterJobStatus struct {
	serverclient.JobStatus
	// Node / NodeID identify where the job currently runs, or — once
	// done — the node (and epoch) that produced the result.
	Node   string `json:"node,omitempty"`
	NodeID string `json:"node_id,omitempty"`
	// Redispatches counts failovers this job survived.
	Redispatches int `json:"redispatches,omitempty"`
}

func (c *Coordinator) statusJSON(j *cjob) ClusterJobStatus {
	state, jerr, queueWait, run := j.snapshot()
	st := ClusterJobStatus{JobStatus: serverclient.JobStatus{
		ID:          j.id,
		Kind:        j.req.Kind.String(),
		Workload:    j.req.Workload,
		LogRows:     j.req.LogRows,
		Priority:    j.priority,
		State:       state.String(),
		QueueWaitMS: queueWait.Milliseconds(),
		ProveMS:     run.Milliseconds(),
	}}
	if jerr != nil {
		code, class := statusForCluster(jerr)
		st.Error = jerr.Error()
		st.Class = class
		st.Retryable = server.RetryableStatus(code)
	}
	j.mu.Lock()
	st.Redispatches = j.redispatches
	if j.doneNodeURL != "" {
		st.Node, st.NodeID = j.doneNodeURL, j.doneNodeID
	} else if j.node != nil {
		st.Node = j.node.url
	}
	j.mu.Unlock()
	return st
}

// handleStatus mirrors the node's three status modes: immediate
// snapshot, ?wait= long-poll, and SSE via Accept: text/event-stream —
// reusing the server package's streaming primitives so the cluster
// speaks the identical wire protocol.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, serverclient.ErrorBody{
			Error: "unknown job id", Class: "not_found"})
		return
	}
	if server.WantsSSE(r) {
		server.StreamJob(w, r, j.running, j.done, func() (any, bool) {
			st := c.statusJSON(j)
			return st, server.TerminalState(st.State)
		})
		return
	}
	wait, err := server.ParseWait(r)
	if err != nil {
		c.writeError(w, err)
		return
	}
	if wait > 0 {
		select {
		case <-j.done:
		case <-time.After(wait):
		case <-r.Context().Done():
			return // client went away; nothing left to answer
		}
	}
	writeJSON(w, http.StatusOK, c.statusJSON(j))
}

func (c *Coordinator) handleProof(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, serverclient.ErrorBody{
			Error: "unknown job id", Class: "not_found"})
		return
	}
	res, err := j.result()
	if err != nil {
		if err == errNotFinished {
			writeJSON(w, http.StatusAccepted, c.statusJSON(j))
			return
		}
		c.writeError(w, err)
		return
	}
	raw, err := res.MarshalBinary()
	if err != nil {
		c.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(raw)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, serverclient.ErrorBody{
			Error: "unknown job id", Class: "not_found"})
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, c.statusJSON(j))
}

// handleHealthz reports the coordinator's own liveness plus the cluster
// picture: "ok" while any node can take work, "degraded" in the body's
// status when some are out, 503 only when draining or no node is
// healthy.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := c.healthyNodes()
	c.mu.Lock()
	pending := c.pending
	c.mu.Unlock()
	h := serverclient.Health{
		Status: "ok",
		Queued: pending,
		// Epoch is the persisted coordinator epoch (0 when journaling is
		// off): it survives restarts and increments on each, so "did it
		// crash and recover" is observable right here.
		Epoch: c.epoch,
	}
	status := http.StatusOK
	switch {
	case c.draining.Load():
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	case healthy == 0:
		h.Status = "no_healthy_nodes"
		status = http.StatusServiceUnavailable
	case healthy < len(c.nodes):
		h.Status = "degraded"
	}
	writeJSON(w, status, h)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Metrics())
}
