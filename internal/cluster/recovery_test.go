package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"unizk/internal/jobs"
	"unizk/internal/journal"
	"unizk/internal/server"
	"unizk/internal/serverclient"
)

// durableConfig is fastConfig plus a journal directory.
func durableConfig(dir string, urls ...string) Config {
	cfg := fastConfig(urls...)
	cfg.JournalDir = dir
	return cfg
}

// TestClusterJournalRestartRetainsState restarts a journaled
// coordinator cleanly and checks the second life serves the first
// life's results bit-identically, keeps its idempotency bindings, bumps
// the persisted epoch, and reports the replay in /metrics and /healthz.
func TestClusterJournalRestartRetainsState(t *testing.T) {
	n1 := startTestNode(t, server.Config{})
	n2 := startTestNode(t, server.Config{})
	t.Cleanup(n1.kill)
	t.Cleanup(n2.kill)
	dir := t.TempDir()

	coord1, cl1, _ := startCluster(t, durableConfig(dir, n1.url, n2.url))
	waitHealthy(t, coord1, 2)
	ctx := context.Background()

	plain := &jobs.Request{Kind: jobs.KindPlonk, Workload: "Fibonacci", LogRows: 6}
	keyed := &jobs.Request{Kind: jobs.KindStark, Workload: "Factorial", LogRows: 5,
		IdempotencyKey: "cluster-restart-k1"}

	plainID, err := cl1.Submit(ctx, plain, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keyedID, err := cl1.Submit(ctx, keyed, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := cl1.Wait(ctx, plainID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl1.Wait(ctx, keyedID); err != nil {
		t.Fatal(err)
	}
	if coord1.epoch != 1 {
		t.Fatalf("first life epoch = %d, want 1", coord1.epoch)
	}
	sctx, scancel := context.WithTimeout(ctx, 30*time.Second)
	_ = coord1.Shutdown(sctx)
	scancel()

	coord2, cl2, _ := startCluster(t, durableConfig(dir, n1.url, n2.url))
	waitHealthy(t, coord2, 2)
	if coord2.epoch != 2 {
		t.Fatalf("second life epoch = %d, want 2", coord2.epoch)
	}
	h, err := cl2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch != 2 {
		t.Fatalf("healthz epoch = %d, want 2", h.Epoch)
	}

	res, err := cl2.Result(ctx, plainID)
	if err != nil {
		t.Fatalf("replayed result fetch: %v", err)
	}
	if !bytes.Equal(res.Proof, plainRes.Proof) {
		t.Fatal("replayed proof differs from the one acknowledged before restart")
	}

	// The idempotency binding survived the restart: the same key
	// resolves to the pre-restart job instead of proving again.
	dupID, err := cl2.Submit(ctx, keyed, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dupID != keyedID {
		t.Fatalf("idempotent resubmit after restart = %s, want %s", dupID, keyedID)
	}

	// A *sync* prove of the same key parks on the restored job's done
	// channel; it must observe the channel already closed and return at
	// once, not hang (the channel is rebuilt by replay, not by a prove).
	pctx, pcancel := context.WithTimeout(ctx, 30*time.Second)
	defer pcancel()
	syncRes, err := cl2.Prove(pctx, keyed, serverclient.Options{})
	if err != nil {
		t.Fatalf("sync prove against replayed terminal job: %v", err)
	}
	if len(syncRes.Proof) == 0 {
		t.Fatal("sync prove against replayed terminal job returned no proof")
	}

	m := coord2.Metrics()
	if m.Journal == nil {
		t.Fatal("cluster metrics journal section missing with journaling on")
	}
	if m.Journal.Epoch != 2 || m.Journal.RecordsReplayed == 0 {
		t.Fatalf("journal metrics = %+v, want epoch 2 and replayed records", m.Journal)
	}
}

// TestClusterJournalRequeuesUnfinished replays a hand-written journal
// holding admitted-but-unfinished jobs — what a kill -9 leaves behind —
// and checks the restarted coordinator re-dispatches and proves them
// under their stable node-level dedup keys, counting the prior
// Dispatched record as a recorded re-dispatch.
func TestClusterJournalRequeuesUnfinished(t *testing.T) {
	dir := t.TempDir()
	reqs := map[string]*jobs.Request{
		"c00000001": {Kind: jobs.KindPlonk, Workload: "Fibonacci", LogRows: 6},
		"c00000002": {Kind: jobs.KindStark, Workload: "Factorial", LogRows: 5},
	}
	jnl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := journal.Rebuild(jnl); err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(reqs))
	for id := range reqs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		raw, err := reqs[id].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := jnl.Append(&journal.Record{
			Type:   journal.TypeAdmitted,
			ID:     id,
			Req:    raw,
			TimeNS: time.Now().UnixNano(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// c00000002 was dispatched before the kill; the node it went to is
	// gone, so the restarted coordinator must re-place it and count the
	// re-dispatch.
	if err := jnl.Append(&journal.Record{
		Type: journal.TypeDispatched,
		ID:   "c00000002",
		Node: "http://127.0.0.1:1", // unreachable: the pre-crash node
	}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	n1 := startTestNode(t, server.Config{})
	t.Cleanup(n1.kill)
	coord, cl, _ := startCluster(t, durableConfig(dir, n1.url))
	waitHealthy(t, coord, 1)
	ctx := context.Background()

	for _, id := range ids {
		res, err := cl.Wait(ctx, id)
		if err != nil {
			t.Fatalf("%s: wait after recovery: %v", id, err)
		}
		if !bytes.Equal(res.Proof, directProof(t, reqs[id])) {
			t.Fatalf("%s: recovered proof differs from direct prove", id)
		}
	}
	if coord.recoveredJobs != 2 || coord.recoveryRedispatches != 1 {
		t.Fatalf("recovered=%d redispatches=%d, want 2 and 1",
			coord.recoveredJobs, coord.recoveryRedispatches)
	}
	m := coord.Metrics()
	if m.Journal == nil || m.Journal.RecoveredJobs != 2 || m.Journal.RecoveryRedispatches != 1 {
		t.Fatalf("journal metrics = %+v, want 2 recovered / 1 re-dispatch", m.Journal)
	}
	// The pre-crash dispatch is credited in the re-dispatch upper bound.
	if m.Redispatches < 1 {
		t.Fatalf("redispatches = %d, want >= 1", m.Redispatches)
	}

	// New admissions must not collide with replayed ids.
	freshID, err := cl.Submit(ctx, &jobs.Request{Kind: jobs.KindPlonk, Workload: "MVM", LogRows: 5}, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if freshID <= "c00000002" {
		t.Fatalf("fresh id %s does not continue the replayed sequence", freshID)
	}
	if _, err := cl.Wait(ctx, freshID); err != nil {
		t.Fatal(err)
	}
}

// TestClusterJournalMetricsShape pins the coordinator /metrics journal
// section: present with the documented field names when journaling is
// on, absent entirely when it is off.
func TestClusterJournalMetricsShape(t *testing.T) {
	n1 := startTestNode(t, server.Config{})
	t.Cleanup(n1.kill)

	on, _, _ := startCluster(t, durableConfig(t.TempDir(), n1.url))
	raw, err := json.Marshal(on.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	sect, ok := doc["journal"]
	if !ok {
		t.Fatalf("cluster metrics JSON has no journal section: %s", raw)
	}
	var fields map[string]any
	if err := json.Unmarshal(sect, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"epoch", "records_appended", "records_replayed", "fsyncs",
		"fsync_p50_ms", "fsync_p99_ms", "segments", "snapshots",
		"snapshot_age_ms", "truncated_tails", "recovery_duration_ms",
		"recovered_jobs", "recovery_redispatches",
	} {
		if _, ok := fields[key]; !ok {
			t.Errorf("cluster journal metrics missing %q: %s", key, sect)
		}
	}
	if fields["epoch"].(float64) != 1 {
		t.Fatalf("fresh journal epoch = %v, want 1", fields["epoch"])
	}

	off, _, _ := startCluster(t, fastConfig(n1.url))
	raw, err = json.Marshal(off.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	doc = nil
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["journal"]; ok {
		t.Fatalf("journaling off but cluster metrics JSON has a journal section: %s", raw)
	}
}
