// Write-ahead journaling and crash recovery for the coordinator. The
// append helpers here are the only writers of journal records; every
// caller pairs the append with the in-memory state mutation under
// c.snapMu.RLock, and the snapshot writer captures + compacts under
// c.snapMu.Lock, so compaction can never delete a record whose effect
// is missing from the replacing snapshot. Recovery (recover) runs once
// in New, before any request is served and before the probers start:
// it replays snapshot+tail into the pending/retained maps and the
// idempotency index, bumps the persisted epoch, and re-dispatches
// non-terminal jobs under their stable "cluster/<id>" node-level dedup
// keys — so a node that already proved a job before the crash dedups
// the replayed submit instead of proving it twice.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"unizk/internal/jobs"
	"unizk/internal/journal"
	"unizk/internal/serverclient"
	"unizk/internal/tenant"
)

// journalAdmitted makes the admission durable. A failure here fails the
// admission: the client must never hold an acknowledgment the journal
// cannot replay. Callers hold c.snapMu.RLock.
func (c *Coordinator) journalAdmitted(j *cjob) error {
	if c.jnl == nil {
		return nil
	}
	raw, err := j.req.MarshalBinary()
	if err != nil {
		return err
	}
	j.mu.Lock()
	submitted := j.submitted
	j.mu.Unlock()
	return c.jnl.Append(&journal.Record{
		Type:      journal.TypeAdmitted,
		ID:        j.id,
		Req:       raw,
		Priority:  int64(j.priority),
		TimeoutNS: int64(j.timeout),
		Tenant:    j.owner.Name(),
		TimeNS:    submitted.UnixNano(),
	})
}

// journalSuperseded marks a job whose Admitted record became durable
// but which lost the under-lock admission recheck: replay must not
// resurrect it. Callers hold c.snapMu.RLock.
func (c *Coordinator) journalSuperseded(id string) {
	if c.jnl == nil {
		return
	}
	_ = c.jnl.Append(&journal.Record{
		Type:   journal.TypeCanceled,
		ID:     id,
		Class:  journal.ClassSuperseded,
		TimeNS: time.Now().UnixNano(),
	})
}

// journalIdem makes an idempotency binding durable. Best-effort: losing
// it costs a replayed dedup after a crash, never a wrong answer.
// Callers hold c.snapMu.RLock.
func (c *Coordinator) journalIdem(key string, fp fingerprint, jobID string) {
	if c.jnl == nil {
		return
	}
	_ = c.jnl.Append(&journal.Record{
		Type:   journal.TypeIdem,
		Key:    key,
		FP:     fp,
		ID:     jobID,
		TimeNS: time.Now().Add(c.cfg.IdempotencyTTL).UnixNano(),
	})
}

// journalDispatched records a node submit attempt before it is made.
// Callers hold c.snapMu.RLock.
func (c *Coordinator) journalDispatched(id, nodeURL string) {
	if c.jnl == nil {
		return
	}
	_ = c.jnl.Append(&journal.Record{
		Type: journal.TypeDispatched,
		ID:   id,
		Node: nodeURL,
	})
}

// journalTerminal records the job's terminal outcome before waiters are
// released. Callers hold c.snapMu.RLock.
func (c *Coordinator) journalTerminal(id string, state cjobState, res *jobs.Result, jerr error, doneURL, doneID string) {
	if c.jnl == nil {
		return
	}
	if state == cstateDone {
		raw, err := res.MarshalBinary()
		if err == nil {
			_ = c.jnl.Append(&journal.Record{
				Type:   journal.TypeCommitted,
				ID:     id,
				Result: raw,
				Node:   doneURL,
				NodeID: doneID,
				TimeNS: time.Now().UnixNano(),
			})
			return
		}
		// A result that cannot round-trip cannot be replayed; record the
		// job as failed so a recovered coordinator is honest about it.
		jerr = fmt.Errorf("cluster: result for %s unmarshalable: %w", id, err)
		state = cstateFailed
	}
	code, class := statusForCluster(jerr)
	_ = c.jnl.Append(&journal.Record{
		Type:   journal.TypeCanceled,
		ID:     id,
		Class:  class,
		Msg:    jerr.Error(),
		Failed: state == cstateFailed,
		Code:   int64(code),
		TimeNS: time.Now().UnixNano(),
	})
}

// recover replays the journal into the coordinator's maps. It runs
// single-threaded in New (no probers, no watchers, no handlers yet);
// c.mu is still held around map writes to keep the guard discipline
// uniform.
func (c *Coordinator) recover() error {
	st, err := journal.Rebuild(c.jnl)
	if err != nil {
		return err
	}
	c.epoch = st.Epoch + 1
	if err := c.jnl.Append(&journal.Record{Type: journal.TypeEpoch, Epoch: c.epoch}); err != nil {
		return err
	}
	now := time.Now()
	var maxID int64
	restored := make(map[string]*cjob, len(st.Jobs))
	var pending []*cjob
	c.mu.Lock()
	for _, id := range st.Order {
		jr := st.Jobs[id]
		if jr == nil {
			continue
		}
		var seq int64
		if _, err := fmt.Sscanf(jr.ID, "c%d", &seq); err == nil && seq > maxID {
			maxID = seq
		}
		if jr.Terminal && jr.Class == journal.ClassSuperseded {
			// Never acknowledged under its own id; nothing to restore.
			continue
		}
		req := new(jobs.Request)
		if err := req.UnmarshalBinary(jr.Req); err != nil {
			// An undecodable request inside a CRC-valid Admitted record
			// means a writer bug, not disk damage; the job cannot be
			// re-proved, so it is dropped rather than blocking startup.
			continue
		}
		j := c.restoreJobLocked(jr, req, now)
		restored[id] = j
		if !jr.Terminal {
			pending = append(pending, j)
		}
	}
	for _, e := range st.Idem {
		if _, ok := restored[e.JobID]; !ok {
			continue
		}
		exp := time.Unix(0, e.ExpiresNS)
		if !exp.After(now) {
			continue
		}
		c.idemSeq++
		c.idemIndex[e.Key] = &idemEntry{
			jobID:   e.JobID,
			fp:      fingerprint(e.FP),
			seq:     c.idemSeq,
			expires: exp,
		}
		c.idemOrder = append(c.idemOrder, idemOrderEntry{key: e.Key, seq: c.idemSeq})
	}
	c.mu.Unlock()
	c.nextID.Store(maxID)
	for _, j := range pending {
		c.watchers.Add(1)
		go c.watch(j)
	}
	return nil
}

// restoreJobLocked rebuilds one replayed job. Terminal jobs become
// retained records (result/error replayable, idempotent hits land on
// them); non-terminal jobs are re-registered as pending with their
// remaining deadline budget and re-dispatched by a fresh watcher. No
// tenant slot is re-acquired (the crash released every slot) and no
// cache flight is restored (cache bodies are deliberately not
// journaled; the next identical submit re-proves and re-primes).
//
//unizklint:holds c.mu
func (c *Coordinator) restoreJobLocked(jr *journal.JobRecord, req *jobs.Request, now time.Time) *cjob {
	tn := c.tenantByName(jr.Tenant)
	j := &cjob{
		id:       jr.ID,
		req:      req,
		nodeKey:  "cluster/" + jr.ID,
		priority: int(jr.Priority),
		timeout:  time.Duration(jr.TimeoutNS),
		done:     make(chan struct{}),
		running:  make(chan struct{}),
		owner:    tn,
	}
	// The job is not yet published, but the guarded fields keep their
	// lock discipline anyway; the caller's c.mu → j.mu order matches
	// captureState.
	j.mu.Lock()
	defer j.mu.Unlock()
	j.submitted = time.Unix(0, jr.SubmittedNS)
	j.dispatches = int(jr.Dispatches)
	if jr.Dispatches > 0 {
		j.started = j.submitted
		close(j.running)
	}
	c.met.submitted.Add(1)
	if jr.Terminal {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		j.ctx, j.cancel = ctx, cancel
		j.finished = time.Unix(0, jr.FinishedNS)
		j.doneNodeURL, j.doneNodeID = jr.DoneNode, jr.DoneNodeID
		if jr.Dispatches > 1 {
			// D dispatches may have invoked up to D proves; credit the
			// surplus as recorded re-dispatches so the exactly-once
			// accounting (unique ≤ invocations ≤ unique + re-dispatches)
			// holds across the restart.
			j.redispatches = int(jr.Dispatches) - 1
			c.met.redispatches.Add(jr.Dispatches - 1)
		}
		switch {
		case !jr.Failed && !jr.Canceled:
			res := new(jobs.Result)
			if err := res.UnmarshalBinary(jr.Result); err == nil {
				j.state, j.res = cstateDone, res
				c.met.completed.Add(1)
			} else {
				j.state = cstateFailed
				j.err = fmt.Errorf("cluster: replayed result for %s unreadable: %w", jr.ID, err)
				c.met.failed.Add(1)
			}
		case jr.Canceled:
			j.state = cstateCanceled
			if jr.Class == "canceled" || jr.Class == "" {
				j.err = context.Canceled
			} else {
				j.err = &serverclient.APIError{StatusCode: int(jr.Code), Class: jr.Class, Message: jr.Msg}
			}
			c.met.canceled.Add(1)
		default:
			j.state = cstateFailed
			j.err = &serverclient.APIError{StatusCode: int(jr.Code), Class: jr.Class, Message: jr.Msg}
			c.met.failed.Add(1)
		}
		// Waiters park on the done channel (sync prove dedup attach,
		// long-poll, SSE); a restored terminal job must present as
		// already closed or they hang forever.
		close(j.done)
		c.jobsByID[jr.ID] = j
		c.finishedList = append(c.finishedList, jr.ID)
		return j
	}

	// Non-terminal: re-register with whatever deadline budget remains
	// (an already-expired budget gets an epsilon so the job terminates
	// promptly through the normal deadline path).
	ctx, cancel := context.WithCancel(c.base)
	if jr.TimeoutNS > 0 {
		rem := time.Duration(jr.TimeoutNS) - now.Sub(j.submitted)
		if rem <= 0 {
			rem = time.Millisecond
		}
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, rem)
		inner := cancel
		cancel = func() { tcancel(); inner() }
	}
	j.ctx, j.cancel = ctx, cancel
	if jr.Dispatches > 0 {
		j.state = cstateDispatched
		// Every pre-crash dispatch may have reached a prover; the restart
		// re-dispatches on top of them, so all D are credited.
		j.redispatches = int(jr.Dispatches)
		c.met.redispatches.Add(jr.Dispatches)
		c.recoveryRedispatches++
	}
	c.recoveredJobs++
	c.jobsByID[jr.ID] = j
	c.pending++
	return j
}

// tenantByName rebinds a replayed job to its tenant; a tenant that no
// longer exists in the registry falls back to the default (the job was
// already admitted — recovery must not re-run admission control).
func (c *Coordinator) tenantByName(name string) *tenant.Tenant {
	for _, tn := range c.tenants.All() {
		if tn.Name() == name {
			return tn
		}
	}
	return c.tenants.Default()
}

// snapshotLoop compacts the journal whenever enough records have
// accumulated since the last snapshot, bounding replay cost.
func (c *Coordinator) snapshotLoop() {
	defer c.probers.Done()
	for {
		if !sleepCtx(c.base, c.cfg.ProbeInterval) {
			return
		}
		if c.jnl.SnapshotDue() {
			c.writeSnapshot()
		}
	}
}

// writeSnapshot captures the full coordinator state and hands it to the
// journal, which writes it as the head of a fresh segment and deletes
// the older ones. snapMu.Lock excludes every append+mutate pair, so the
// captured state covers everything the deleted segments held.
func (c *Coordinator) writeSnapshot() {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	_ = c.jnl.WriteSnapshot(c.captureState())
}

// captureState builds the snapshot image. Callers hold c.snapMu.Lock.
func (c *Coordinator) captureState() *journal.State {
	st := journal.NewState()
	st.Epoch = c.epoch
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.jobsByID))
	for id := range c.jobsByID {
		ids = append(ids, id)
	}
	// Job ids are zero-padded ("c%08d"), so lexicographic order is
	// admission order.
	sort.Strings(ids)
	for _, id := range ids {
		j := c.jobsByID[id]
		jr := &journal.JobRecord{
			ID:        j.id,
			Priority:  int64(j.priority),
			TimeoutNS: int64(j.timeout),
			Tenant:    j.owner.Name(),
		}
		if raw, err := j.req.MarshalBinary(); err == nil {
			jr.Req = raw
		} else {
			continue
		}
		j.mu.Lock()
		jr.SubmittedNS = j.submitted.UnixNano()
		jr.Dispatches = int64(j.dispatches)
		if j.node != nil {
			jr.Node = j.node.url
		}
		switch j.state {
		case cstateDone:
			jr.Terminal = true
			jr.DoneNode, jr.DoneNodeID = j.doneNodeURL, j.doneNodeID
			jr.FinishedNS = j.finished.UnixNano()
			if raw, err := j.res.MarshalBinary(); err == nil {
				jr.Result = raw
			}
		case cstateFailed, cstateCanceled:
			jr.Terminal = true
			jr.Failed = j.state == cstateFailed
			jr.Canceled = j.state == cstateCanceled
			jr.FinishedNS = j.finished.UnixNano()
			if j.err != nil {
				code, class := statusForCluster(j.err)
				jr.Class, jr.Code, jr.Msg = class, int64(code), j.err.Error()
			}
		}
		j.mu.Unlock()
		st.Jobs[id] = jr
		st.Order = append(st.Order, id)
	}
	for key, e := range c.idemIndex {
		st.Idem = append(st.Idem, journal.IdemRecord{
			Key:       key,
			FP:        [32]byte(e.fp),
			JobID:     e.jobID,
			ExpiresNS: e.expires.UnixNano(),
		})
	}
	sort.Slice(st.Idem, func(a, b int) bool { return st.Idem[a].Key < st.Idem[b].Key })
	return st
}
