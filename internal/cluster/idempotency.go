// The coordinator's replicated idempotency index. It mirrors the
// node-side semantics exactly — same fingerprint (sha256 of the
// client's original request bytes), same key-reuse conflict rule, same
// failures-are-never-cached policy, same TTL and entry-count bounds —
// but lives at the coordinator, which is what makes it survive node
// failure: a client retry landing *after* a failover dedups onto the
// original cluster job, whose cached result replays even though the
// node that proved it no longer exists.
//
// All idem* methods require c.mu.
package cluster

import (
	"crypto/sha256"
	"time"

	"unizk/internal/server"
)

type fingerprint [sha256.Size]byte

// requestFingerprint hashes the request exactly as admitted, including
// the client's own idempotency key — so key reuse with different
// payloads is detectable as a conflict.
func requestFingerprint(raw []byte) fingerprint { return sha256.Sum256(raw) }

type idemEntry struct {
	jobID   string
	fp      fingerprint
	seq     uint64
	expires time.Time
}

type idemOrderEntry struct {
	key string
	seq uint64
}

// idemLookupLocked resolves a key to its live cluster job, erring with
// server.ErrIdempotencyConflict when the key is bound to different
// request bytes. Entries for failed/canceled jobs are dropped on sight:
// a failure must never be replayed as if it were the outcome.
//
//unizklint:holds c.mu
func (c *Coordinator) idemLookupLocked(key string, fp fingerprint) (*cjob, error) {
	e, ok := c.idemIndex[key]
	if !ok {
		return nil, nil
	}
	if time.Now().After(e.expires) {
		delete(c.idemIndex, key)
		return nil, nil
	}
	j, ok := c.jobsByID[e.jobID]
	if !ok {
		// The job record was evicted from the retained set; the key can
		// no longer vouch for anything.
		delete(c.idemIndex, key)
		return nil, nil
	}
	if e.fp != fp {
		c.met.idemConflicts.Add(1)
		return nil, server.ErrIdempotencyConflict
	}
	j.mu.Lock()
	failed := j.state == cstateFailed || j.state == cstateCanceled
	j.mu.Unlock()
	if failed {
		delete(c.idemIndex, key)
		return nil, nil
	}
	return j, nil
}

// idemInsertLocked binds key→job, evicting the oldest entries beyond
// MaxIdempotencyKeys.
//
//unizklint:holds c.mu
func (c *Coordinator) idemInsertLocked(key string, fp fingerprint, jobID string) {
	c.idemSeq++
	c.idemIndex[key] = &idemEntry{
		jobID:   jobID,
		fp:      fp,
		seq:     c.idemSeq,
		expires: time.Now().Add(c.cfg.IdempotencyTTL),
	}
	c.idemOrder = append(c.idemOrder, idemOrderEntry{key: key, seq: c.idemSeq})
	for len(c.idemIndex) > c.cfg.MaxIdempotencyKeys && len(c.idemOrder) > 0 {
		oldest := c.idemOrder[0]
		c.idemOrder = c.idemOrder[1:]
		if e, ok := c.idemIndex[oldest.key]; ok && e.seq == oldest.seq {
			delete(c.idemIndex, oldest.key)
		}
	}
}

// idemDeleteLocked drops a key, but only if it still points at the
// given job — the key may have been rebound since.
//
//unizklint:holds c.mu
func (c *Coordinator) idemDeleteLocked(key, jobID string) {
	if key == "" {
		return
	}
	if e, ok := c.idemIndex[key]; ok && e.jobID == jobID {
		delete(c.idemIndex, key)
	}
}
