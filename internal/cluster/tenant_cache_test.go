package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"unizk/internal/jobs"
	"unizk/internal/server"
	"unizk/internal/serverclient"
	"unizk/internal/tenant"
)

// nodeProveInvocations sums actual prover entries across the real node
// processes — the ground truth the coordinator-level cache must keep
// from growing.
func nodeProveInvocations(nodes []*testNode) int64 {
	var total int64
	for _, n := range nodes {
		total += n.srv.Metrics().ProveInvocations
	}
	return total
}

// TestClusterCacheAndTenants drives the serving tier against a 3-node
// cluster: the coordinator's content-addressed cache answers repeats
// and coalesces concurrent identical submissions with exactly one prove
// across the whole cluster, tenant limits reject at the cluster edge
// with 429 + Retry-After while other tenants are unaffected, and
// /metrics reports cache and per-tenant counters.
func TestClusterCacheAndTenants(t *testing.T) {
	nodes := []*testNode{
		startTestNode(t, server.Config{QueueCap: 16, MaxInFlight: 2}),
		startTestNode(t, server.Config{QueueCap: 16, MaxInFlight: 2}),
		startTestNode(t, server.Config{QueueCap: 16, MaxInFlight: 2}),
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.kill()
		}
	})
	reg, err := tenant.NewRegistry(
		tenant.Config{Name: "alpha", Key: "alpha-key", Rate: 0.001, Burst: 1},
		tenant.Config{Name: "beta", Key: "beta-key", Class: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(nodes[0].url, nodes[1].url, nodes[2].url)
	cfg.CacheEntries = 32
	cfg.CacheVerify = true
	cfg.Tenants = reg
	coord, cl, _ := startCluster(t, cfg)
	waitHealthy(t, coord, 3)
	ctx := context.Background()

	beta := *cl
	beta.APIKey = "beta-key"
	req := &jobs.Request{Kind: jobs.KindStark, Workload: "Factorial", LogRows: 5}

	// First submission proves on some node; repeats are coordinator
	// cache hits — zero extra node traffic, bit-identical bytes.
	first, err := beta.SubmitDetail(ctx, req, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := beta.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	base := nodeProveInvocations(nodes)
	for i := 0; i < 3; i++ {
		hit, err := beta.SubmitDetail(ctx, req, serverclient.Options{})
		if err != nil {
			t.Fatalf("cached submit %d: %v", i, err)
		}
		if !hit.Cached || hit.State != "done" {
			t.Fatalf("cached submit %d = %+v, want done from cache", i, hit)
		}
		again, err := beta.Result(ctx, hit.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Proof, res.Proof) {
			t.Fatalf("cached submit %d: proof differs", i)
		}
	}
	if got := nodeProveInvocations(nodes); got != base {
		t.Fatalf("cache hits reached the nodes: prove invocations %d → %d", base, got)
	}
	if !bytes.Equal(res.Proof, directProof(t, req)) {
		t.Fatal("cluster-cached proof differs from direct prove")
	}

	// Concurrent identical submissions of fresh content coalesce onto
	// one cluster job: exactly one prove across all three nodes.
	herd := &jobs.Request{Kind: jobs.KindPlonk, Workload: "Fibonacci", LogRows: 6}
	base = nodeProveInvocations(nodes)
	const k = 6
	var wg sync.WaitGroup
	proofs := make([][]byte, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := beta.SubmitDetail(ctx, herd, serverclient.Options{})
			if err != nil {
				errs[i] = err
				return
			}
			res, err := beta.Wait(ctx, r.ID)
			if err != nil {
				errs[i] = err
				return
			}
			proofs[i] = res.Proof
		}(i)
	}
	wg.Wait()
	want := directProof(t, herd)
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("herd submit %d: %v", i, errs[i])
		}
		if !bytes.Equal(proofs[i], want) {
			t.Fatalf("herd submit %d: proof differs from direct prove", i)
		}
	}
	if got := nodeProveInvocations(nodes); got != base+1 {
		t.Fatalf("herd proved %d times across the cluster, want exactly 1", got-base)
	}

	// alpha's token bucket (burst 1, ~no refill): first passes, second
	// gets 429 rate_limited naming the tenant; beta is unaffected.
	alpha := *cl
	alpha.APIKey = "alpha-key"
	other := &jobs.Request{Kind: jobs.KindStark, Workload: "Fibonacci", LogRows: 5}
	id, err := alpha.Submit(ctx, other, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Wait(ctx, id); err != nil {
		t.Fatal(err)
	}
	_, err = alpha.Submit(ctx, other, serverclient.Options{})
	var apiErr *serverclient.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate cluster submit = %v, want 429", err)
	}
	if apiErr.Class != tenant.ReasonRateLimited || apiErr.Tenant != "alpha" || apiErr.RetryAfter < time.Second {
		t.Fatalf("cluster 429 = %+v, want rate_limited/alpha with Retry-After", apiErr)
	}
	if hit, err := beta.SubmitDetail(ctx, req, serverclient.Options{}); err != nil || !hit.Cached {
		t.Fatalf("beta during alpha limit = %+v %v, want unaffected cache hit", hit, err)
	}

	// Unknown key at the cluster edge: 401, terminal.
	bad := *cl
	bad.APIKey = "no-such-key"
	if _, err := bad.Submit(ctx, req, serverclient.Options{}); !errors.As(err, &apiErr) ||
		apiErr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key cluster submit = %v, want 401", err)
	}

	m := coord.Metrics()
	// The 5 herd followers land as coalesced attaches or — if they arrive
	// after the leader completed — as plain hits, so bound the sum: 4
	// loop/limit hits plus 5 herd followers.
	if m.CacheHits < 4 || m.CacheInserted < 2 || m.CacheCoalesced+m.CacheHits < 9 {
		t.Fatalf("cluster cache counters = hits %d inserted %d coalesced %d",
			m.CacheHits, m.CacheInserted, m.CacheCoalesced)
	}
	if m.RejectedRateLimited != 1 || m.RejectedUnauthorized != 1 {
		t.Fatalf("rejected limited/unauth = %d/%d, want 1/1",
			m.RejectedRateLimited, m.RejectedUnauthorized)
	}
	byName := map[string]serverclient.TenantMetrics{}
	for _, row := range m.Tenants {
		byName[row.Name] = row
	}
	if byName["alpha"].RateLimited != 1 || byName["beta"].Admitted < 2 {
		t.Fatalf("tenant roster = %+v", m.Tenants)
	}
}

// TestClusterStreamAndLongPoll checks the coordinator speaks the same
// progress protocols as a single node: WaitStream consumes its SSE
// stream to a verified result, and ?wait= long-polls settle promptly.
func TestClusterStreamAndLongPoll(t *testing.T) {
	n := startTestNode(t, server.Config{QueueCap: 16, MaxInFlight: 2})
	t.Cleanup(n.kill)
	coord, cl, _ := startCluster(t, fastConfig(n.url))
	waitHealthy(t, coord, 1)
	ctx := context.Background()

	req := &jobs.Request{Kind: jobs.KindStark, Workload: "Fibonacci", LogRows: 6}
	id, err := cl.Submit(ctx, req, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	res, err := cl.WaitStream(ctx, id, func(st *serverclient.JobStatus) {
		states = append(states, st.State)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jobs.CheckResult(req, res); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || !serverclient.TerminalState(states[len(states)-1]) {
		t.Fatalf("WaitStream against cluster observed %v, want terminal tail", states)
	}

	id2, err := cl.Submit(ctx, req, serverclient.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.StatusWait(ctx, id2, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("long-poll state = %q, want done", st.State)
	}
}
