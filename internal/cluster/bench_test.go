package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"unizk/internal/jobs"
	"unizk/internal/server"
	"unizk/internal/serverclient"
)

// TestBenchClusterThroughput is the cluster scaling benchmark behind
// BENCH_cluster.json: the same job batch pushed through a 1-node and a
// 3-node cluster (identical coordinator, so its overhead is held
// constant), recording throughput for the perf trajectory. It runs only
// when UNIZK_BENCH_CLUSTER=1 — it is a measurement, not a gate — and
// rewrites BENCH_cluster.json at the repo root:
//
//	UNIZK_BENCH_CLUSTER=1 go test -run '^TestBenchClusterThroughput$' ./internal/cluster
func TestBenchClusterThroughput(t *testing.T) {
	if os.Getenv("UNIZK_BENCH_CLUSTER") != "1" {
		t.Skip("set UNIZK_BENCH_CLUSTER=1 to run the cluster throughput benchmark")
	}

	const (
		numJobs    = 24
		numClients = 6
		logRows    = 10
	)
	workloads := []string{"Fibonacci", "Factorial", "SHA-256"}

	run := func(numNodes int) (jobsPerSec float64, elapsed time.Duration) {
		var tns []*testNode
		var urls []string
		for i := 0; i < numNodes; i++ {
			tn := startTestNode(t, server.Config{MaxInFlight: 2})
			tns = append(tns, tn)
			urls = append(urls, tn.url)
		}
		defer func() {
			for _, tn := range tns {
				tn.kill()
			}
		}()
		coord, cl, _ := startCluster(t, fastConfig(urls...))
		waitHealthy(t, coord, numNodes)

		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, numJobs)
		for c := 0; c < numClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for n := c; n < numJobs; n += numClients {
					req := &jobs.Request{
						Kind:     jobs.KindStark,
						Workload: workloads[n%len(workloads)],
						LogRows:  logRows,
					}
					id, err := cl.Submit(ctx, req, serverclient.Options{})
					if err != nil {
						errs <- fmt.Errorf("job %d submit: %w", n, err)
						return
					}
					if _, err := cl.Wait(ctx, id); err != nil {
						errs <- fmt.Errorf("job %d wait: %w", n, err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		elapsed = time.Since(start)
		return float64(numJobs) / elapsed.Seconds(), elapsed
	}

	single, singleDur := run(1)
	triple, tripleDur := run(3)

	out := map[string]any{
		"bench":     "cluster-throughput",
		"date":      time.Now().UTC().Format("2006-01-02"),
		"workload":  fmt.Sprintf("%d stark jobs, log_rows=%d, %d concurrent clients", numJobs, logRows, numClients),
		"node_cfg":  "MaxInFlight=2 per node",
		"host_cpus": runtime.NumCPU(),
		"1_node":    map[string]any{"jobs_per_sec": round2(single), "elapsed_sec": round2(singleDur.Seconds())},
		"3_nodes":   map[string]any{"jobs_per_sec": round2(triple), "elapsed_sec": round2(tripleDur.Seconds())},
		"speedup_x": round2(triple / single),
	}
	raw, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_cluster.json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("1 node: %.2f jobs/s, 3 nodes: %.2f jobs/s (%.2fx) → %s", single, triple, triple/single, path)
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
