package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"unizk/internal/faultinject/netchaos"
	"unizk/internal/jobs"
	"unizk/internal/server"
	"unizk/internal/serverclient"
)

// TestMain lets the test binary double as the coordinator subprocess
// for the crash soak: with UNIZK_CRASH_COORD set, the process is a
// journaled coordinator the parent test can SIGKILL for real.
func TestMain(m *testing.M) {
	if os.Getenv("UNIZK_CRASH_COORD") != "" {
		crashCoordMain()
		return
	}
	os.Exit(m.Run())
}

// crashCoordMain is the coordinator subprocess: a journaled coordinator
// whose node links run through seeded chaos, serving until SIGKILLed by
// the parent (or drained on SIGTERM, for the soak's final clean exit).
func crashCoordMain() {
	dir := os.Getenv("UNIZK_CRASH_COORD")
	addr := os.Getenv("UNIZK_CRASH_ADDR")
	portfile := os.Getenv("UNIZK_CRASH_PORTFILE")
	nodes := strings.Split(os.Getenv("UNIZK_CRASH_NODES"), ",")
	seed, _ := strconv.ParseInt(os.Getenv("UNIZK_CRASH_SEED"), 10, 64)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "crash-coord:", err)
		os.Exit(1)
	}
	linkChaos := netchaos.New(netchaos.Config{
		Seed:         seed + 100,
		ReqResetProb: 0.05,
		TruncateProb: 0.05,
		BlipProb:     0.05,
	})
	coord, err := New(Config{
		Nodes:                nodes,
		ProbeInterval:        25 * time.Millisecond,
		StaleAfter:           time.Second,
		PollInterval:         10 * time.Millisecond,
		RecoverTimeout:       300 * time.Millisecond,
		NodeFailureThreshold: 4,
		NodeOpenTimeout:      50 * time.Millisecond,
		NodeMaxAttempts:      4,
		NodeBaseDelay:        5 * time.Millisecond,
		NodeMaxDelay:         100 * time.Millisecond,
		Seed:                 seed,
		Transport:            linkChaos.WrapTransport(&http.Transport{}),
		JournalDir:           dir,
	})
	if err != nil {
		fail(err)
	}
	// The predecessor's port can linger for an instant after the kill.
	var ln net.Listener
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fail(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := os.WriteFile(portfile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: coord.Handler()}
	go func() { _ = hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	<-sig
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_ = coord.Shutdown(dctx)
	_ = hs.Shutdown(dctx)
	os.Exit(0)
}

// crashCoord is one coordinator subprocess life.
type crashCoord struct {
	cmd  *exec.Cmd
	addr string
	url  string
}

// spawnCrashCoord starts a coordinator life on addr (or an ephemeral
// port for "127.0.0.1:0") over the given journal dir, and waits for it
// to report its bound address.
func spawnCrashCoord(t *testing.T, dir, addr string, urls []string, seed int64, life int) *crashCoord {
	t.Helper()
	portfile := filepath.Join(t.TempDir(), fmt.Sprintf("port-%d", life))
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"UNIZK_CRASH_COORD="+dir,
		"UNIZK_CRASH_ADDR="+addr,
		"UNIZK_CRASH_PORTFILE="+portfile,
		"UNIZK_CRASH_NODES="+strings.Join(urls, ","),
		"UNIZK_CRASH_SEED="+strconv.FormatInt(seed, 10),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("life %d: start coordinator: %v", life, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		raw, err := os.ReadFile(portfile)
		if err == nil && len(raw) > 0 {
			bound := strings.TrimSpace(string(raw))
			return &crashCoord{cmd: cmd, addr: bound, url: "http://" + bound}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("life %d: coordinator never reported its address", life)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// sigkill hard-kills the coordinator process — the real thing, not a
// simulated drain — and reaps it.
func (cc *crashCoord) sigkill() {
	_ = cc.cmd.Process.Kill()
	_ = cc.cmd.Wait()
}

// clusterMetrics fetches and decodes the coordinator's GET /metrics.
func clusterMetrics(ctx context.Context, url string) (*ClusterMetrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	m := new(ClusterMetrics)
	if err := json.Unmarshal(raw, m); err != nil {
		return nil, err
	}
	return m, nil
}

// TestCrashRecoverySoak is the acceptance scenario for durable
// coordinator state: a journaled coordinator subprocess fronting three
// chaos-wrapped prover nodes is SIGKILLed mid-load and restarted on the
// same journal directory and address — twice, the second time onto a
// journal whose tail the test has torn.
//
// Invariants pinned:
//   - zero acknowledged jobs lost: every id acked before the kill
//     resolves after recovery, with a proof bit-identical to a direct,
//     clusterless prove;
//   - exactly-once accounting across the crash: unique jobs ≤ prove
//     invocations ≤ unique jobs + recorded re-dispatches (the journal's
//     Dispatched records make every possible duplicate a *recorded*
//     re-dispatch under the stable node-level dedup keys);
//   - the persisted epoch increments per life and is observable on
//     /healthz;
//   - a torn journal tail is truncated and counted, never a failed
//     startup;
//   - after the final clean drain, the parent's goroutine count
//     settles.
//
// The seed is fixed, so the fault schedule (up to goroutine
// interleaving) reproduces.
func TestCrashRecoverySoak(t *testing.T) {
	const (
		seed       = 20250807
		numNodes   = 3
		numClients = 3
		jobsEach   = 3
	)
	before := runtime.NumGoroutine()

	// Prover nodes live in the parent (they are not the crash subject),
	// each behind its own seeded fault injector.
	// Listener-class faults only: the transport-class ones (resets,
	// blips, truncation) ride the coordinator subprocess's own link
	// chaos, seeded via UNIZK_CRASH_SEED.
	nodeChaos := func(i int64) *netchaos.Chaos {
		return netchaos.New(netchaos.Config{
			Seed:            seed + i,
			AcceptDelayProb: 0.10,
			ConnDelayProb:   0.05,
			ConnResetProb:   0.01,
			MaxDelay:        2 * time.Millisecond,
		})
	}
	type liveNode struct {
		srv   *server.Server
		hs    *http.Server
		chaos *netchaos.Chaos
	}
	var nodes []*liveNode
	var urls []string
	for i := 0; i < numNodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		s := server.New(server.Config{QueueCap: 64, MaxInFlight: 2})
		hs := &http.Server{Handler: s.Handler()}
		chaos := nodeChaos(int64(i))
		go func() { _ = hs.Serve(chaos.WrapListener(ln)) }()
		nodes = append(nodes, &liveNode{srv: s, hs: hs, chaos: chaos})
		urls = append(urls, "http://"+ln.Addr().String())
	}

	dir := t.TempDir()
	life1 := spawnCrashCoord(t, dir, "127.0.0.1:0", urls, seed, 1)
	killGuard := life1
	t.Cleanup(func() { killGuard.sigkill() })

	// The work matrix: per-client keys plus one request shared by all
	// clients, which must converge on one cluster job across the crash.
	shared := &jobs.Request{Kind: jobs.KindStark, Workload: "Fibonacci", LogRows: 5,
		IdempotencyKey: "crashsoak-shared"}
	workloads := []string{"Fibonacci", "Factorial", "SHA-256"}
	kinds := []jobs.Kind{jobs.KindPlonk, jobs.KindStark}
	request := func(client, n int) *jobs.Request {
		if n == 0 {
			return shared
		}
		return &jobs.Request{
			Kind:           kinds[(client+n)%len(kinds)],
			Workload:       workloads[(client*jobsEach+n)%len(workloads)],
			LogRows:        8 + (client+n)%3,
			IdempotencyKey: fmt.Sprintf("crashsoak-c%d-n%d", client, n),
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 8*time.Minute)
	defer cancel()
	newClient := func(ci int) *serverclient.Client {
		c := serverclient.New(life1.url)
		c.PollInterval = 10 * time.Millisecond
		c.Retry = &serverclient.RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			Seed:        seed + int64(ci) + 1,
		}
		return c
	}

	// Phase 1: every client submits its full batch and records the acked
	// ids. Everything acknowledged here must survive the kill.
	type acked struct {
		req *jobs.Request
		id  string
	}
	ackedJobs := make([][]acked, numClients)
	var submitWG sync.WaitGroup
	for ci := 0; ci < numClients; ci++ {
		submitWG.Add(1)
		go func(ci int) {
			defer submitWG.Done()
			c := newClient(ci)
			for n := 0; n < jobsEach; n++ {
				req := request(ci, n)
				id, ok := soakSubmit(t, ctx, c, ci, n, req)
				if !ok {
					return
				}
				ackedJobs[ci] = append(ackedJobs[ci], acked{req: req, id: id})
			}
		}(ci)
	}
	submitWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: clients wait for their proofs while the parent waits for
	// the load to be demonstrably mid-flight — some jobs terminal, some
	// not — and then delivers the SIGKILL.
	proofs := make([]map[string][]byte, numClients)
	var waitWG sync.WaitGroup
	for ci := 0; ci < numClients; ci++ {
		proofs[ci] = make(map[string][]byte)
		waitWG.Add(1)
		go func(ci int) {
			defer waitWG.Done()
			c := newClient(ci)
			for n, a := range ackedJobs[ci] {
				proof, ok := soakAwait(t, ctx, c, ci, n, a.id)
				if !ok {
					return
				}
				proofs[ci][a.id] = proof
			}
		}(ci)
	}

	midLoad := time.Now().Add(30 * time.Second)
	for {
		m, err := clusterMetrics(ctx, life1.url)
		if err == nil && m.Completed >= 2 && m.Pending >= 1 {
			break
		}
		if time.Now().After(midLoad) {
			t.Fatal("load never reached the mid-flight shape (some done, some pending)")
		}
		time.Sleep(10 * time.Millisecond)
	}
	life1.sigkill()

	// Life 2: same journal, same address. Recovery must replay the
	// retained results, re-dispatch the in-flight jobs under their
	// stable dedup keys, and let every blocked Wait finish.
	life2 := spawnCrashCoord(t, dir, life1.addr, urls, seed+1, 2)
	killGuard = life2
	waitWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Zero acknowledged jobs lost, proofs bit-identical to direct.
	direct := map[string][]byte{}
	byID := map[string][]byte{}
	for ci := 0; ci < numClients; ci++ {
		if len(proofs[ci]) != len(ackedJobs[ci]) || len(ackedJobs[ci]) != jobsEach {
			t.Fatalf("client %d: %d acked, %d proven, want %d of each",
				ci, len(ackedJobs[ci]), len(proofs[ci]), jobsEach)
		}
		for _, a := range ackedJobs[ci] {
			proof := proofs[ci][a.id]
			sig := fmt.Sprintf("%s|%s|%d", a.req.Kind, a.req.Workload, a.req.LogRows)
			want, ok := direct[sig]
			if !ok {
				d, err := jobs.Execute(context.Background(), a.req)
				if err != nil {
					t.Fatalf("direct prove %s: %v", sig, err)
				}
				want = d.Proof
				direct[sig] = want
			}
			if !bytes.Equal(proof, want) {
				t.Fatalf("client %d job %s (%s): proof differs from direct prove across the crash", ci, a.id, sig)
			}
			if prev, ok := byID[a.id]; ok && !bytes.Equal(prev, proof) {
				t.Fatalf("job %s returned different proof bytes to different clients", a.id)
			}
			byID[a.id] = proof
		}
	}

	// The shared key converged on one job, crash and all.
	sharedIDs := map[string]bool{}
	for ci := 0; ci < numClients; ci++ {
		sharedIDs[ackedJobs[ci][0].id] = true
	}
	if len(sharedIDs) != 1 {
		t.Fatalf("shared idempotency key mapped to %d cluster jobs: %v", len(sharedIDs), sharedIDs)
	}

	// Epoch observability: life 2 replays epoch 1 and serves epoch 2.
	cl2 := serverclient.New(life2.url)
	h, err := cl2.Health(ctx)
	if err != nil {
		t.Fatalf("life 2 healthz: %v", err)
	}
	if h.Epoch != 2 {
		t.Fatalf("life 2 epoch = %d, want 2", h.Epoch)
	}

	// Exactly-once accounting across the crash. Node-level dedup keys
	// are stable across coordinator lives, so a node that proved a job
	// before the kill absorbs its replayed submit. Any surplus prove
	// invocation requires moving a job between nodes — and the journal
	// makes every such move a recorded re-dispatch.
	m2, err := clusterMetrics(ctx, life2.url)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Journal == nil {
		t.Fatal("life 2 metrics have no journal section")
	}
	if m2.Journal.RecoveredJobs == 0 {
		t.Fatalf("kill landed mid-load but recovery restored no pending jobs (journal %+v)", m2.Journal)
	}
	unique := int64(len(byID))
	var invocations int64
	for _, n := range nodes {
		invocations += n.srv.Metrics().ProveInvocations
	}
	if invocations < unique {
		t.Fatalf("invocations %d < %d unique jobs — a proof came from nowhere", invocations, unique)
	}
	waste := invocations - unique
	if waste > m2.Redispatches {
		t.Fatalf("wasted invocations %d exceed the %d recorded re-dispatches (unique=%d invocations=%d journal=%+v)",
			waste, m2.Redispatches, unique, invocations, m2.Journal)
	}
	var chaosTotal int64
	for _, n := range nodes {
		chaosTotal += n.chaos.Stats().Total()
	}
	if chaosTotal == 0 {
		t.Fatal("chaos injected no faults; the soak proved nothing")
	}
	t.Logf("crash soak: unique=%d invocations=%d waste=%d redispatches=%d recovered=%d recovery-redispatches=%d replayed-records=%d chaos=%d",
		unique, invocations, waste, m2.Redispatches,
		m2.Journal.RecoveredJobs, m2.Journal.RecoveryRedispatches,
		m2.Journal.RecordsReplayed, chaosTotal)

	// Phase 3: kill life 2, tear the journal tail the way an interrupted
	// write would, and require life 3 to start by truncating — loudly,
	// not fatally — and to keep the retained results.
	life2.sigkill()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs)
	tail, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tail.Write([]byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	_ = tail.Close()

	life3 := spawnCrashCoord(t, dir, life1.addr, urls, seed+2, 3)
	killGuard = life3
	cl3 := serverclient.New(life3.url)
	h3, err := cl3.Health(ctx)
	if err != nil {
		t.Fatalf("life 3 healthz after torn tail: %v", err)
	}
	if h3.Epoch != 3 {
		t.Fatalf("life 3 epoch = %d, want 3", h3.Epoch)
	}
	m3, err := clusterMetrics(ctx, life3.url)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Journal == nil || m3.Journal.TruncatedTails == 0 {
		t.Fatalf("life 3 journal metrics = %+v, want a counted truncated tail", m3.Journal)
	}
	for id, want := range byID {
		res, err := cl3.Result(ctx, id)
		if err != nil {
			t.Fatalf("life 3: replayed result %s: %v", id, err)
		}
		if !bytes.Equal(res.Proof, want) {
			t.Fatalf("life 3: job %s proof changed across torn-tail recovery", id)
		}
	}

	// Final life drains cleanly on SIGTERM — recovery did not wedge
	// shutdown.
	if err := life3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := life3.cmd.Wait(); err != nil {
		t.Fatalf("life 3 did not drain cleanly: %v", err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	for _, n := range nodes {
		if err := n.srv.Shutdown(sctx); err != nil {
			t.Fatalf("node drain after soak: %v", err)
		}
		_ = n.hs.Close()
	}
	settleGoroutines(t, before)
}
