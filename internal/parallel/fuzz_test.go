package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

// FuzzForCoverage fuzzes the chunking arithmetic: any (n, grain, workers)
// must visit every index exactly once and stay inside [0, n).
func FuzzForCoverage(f *testing.F) {
	f.Add(16, 4, 2)
	f.Add(0, 0, 1)
	f.Add(257, 3, 7)
	f.Add(1, 1000, 16)
	f.Add(4096, -1, 3)
	f.Fuzz(func(t *testing.T, n, grain, workers int) {
		if n < 0 || n > 1<<16 {
			t.Skip()
		}
		if workers < 1 || workers > 32 {
			t.Skip()
		}
		if grain > 1<<20 || grain < -1<<20 {
			t.Skip()
		}
		p := NewPool(workers)
		defer p.Close()
		seen := make([]int32, n)
		err := p.For(context.Background(), n, grain, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("For(n=%d grain=%d workers=%d): %v", n, grain, workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d grain=%d workers=%d: index %d visited %d times",
					n, grain, workers, i, c)
			}
		}
	})
}
