package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestForCoversEveryIndexOnce is the core property: for arbitrary (n,
// grain, workers), For visits every index in [0, n) exactly once.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 100, 255, 256, 257, 1000, 4096} {
			for _, grain := range []int{-1, 0, 1, 2, 3, 16, 255, 10000} {
				seen := make([]int32, n)
				err := p.For(context.Background(), n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: bad chunk [%d,%d)", workers, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&seen[i], 1)
					}
				})
				if err != nil {
					t.Fatalf("workers=%d n=%d grain=%d: %v", workers, n, grain, err)
				}
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times",
							workers, n, grain, i, c)
					}
				}
			}
		}
		p.Close()
	}
}

// TestForPreCancelled checks a cancelled context returns promptly without
// running any chunk.
func TestForPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Bool{}
	err := For(ctx, 1<<20, 1, func(lo, hi int) { ran.Store(true) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("chunk ran despite pre-cancelled context")
	}
}

// TestForCancelMidway checks cancellation between chunks stops the loop
// and surfaces ctx.Err().
func TestForCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	err := For(ctx, 1<<16, 16, func(lo, hi int) {
		if count.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := count.Load(); c >= 1<<16/16 {
		t.Fatalf("all %d chunks ran despite cancellation", c)
	}
}

// TestForPanicPropagates checks a panic in a chunk is returned as a
// *PanicError without deadlocking the other workers.
func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		done := make(chan error, 1)
		go func() {
			done <- p.For(context.Background(), 1024, 4, func(lo, hi int) {
				if lo >= 512 {
					panic("boom")
				}
			})
		}()
		select {
		case err := <-done:
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
			}
			if pe.Value != "boom" {
				t.Fatalf("workers=%d: panic value = %v, want boom", workers, pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatalf("workers=%d: missing stack", workers)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: For deadlocked after panic", workers)
		}
		p.Close()
	}
}

// TestNestedFor checks an inner For issued from inside a worker chunk
// completes (the non-blocking handoff plus caller participation make this
// deadlock-free even when every worker is busy).
func TestNestedFor(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const outer, innerN = 64, 256
	sums := make([]int64, outer)
	err := p.For(context.Background(), outer, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s atomic.Int64
			if e := p.For(context.Background(), innerN, 16, func(l, h int) {
				for j := l; j < h; j++ {
					s.Add(int64(j))
				}
			}); e != nil {
				t.Errorf("inner For: %v", e)
				return
			}
			sums[i] = s.Load()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(innerN * (innerN - 1) / 2)
	for i, s := range sums {
		if s != want {
			t.Fatalf("outer %d: sum = %d, want %d", i, s, want)
		}
	}
}

// TestSerialModeForcesInline checks SetSerial(true) runs every chunk on
// the calling goroutine.
func TestSerialModeForcesInline(t *testing.T) {
	SetSerial(true)
	defer SetSerial(false)
	if !SerialMode() {
		t.Fatal("SerialMode() = false after SetSerial(true)")
	}
	p := NewPool(8)
	defer p.Close()
	var order []int
	err := p.For(context.Background(), 100, 7, func(lo, hi int) {
		order = append(order, lo) // safe: serial mode is single-goroutine
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatal("serial mode ran chunks out of order or concurrently")
		}
	}
}

// TestMust checks the legacy-wrapper adapter re-panics PanicError values
// and passes nil through.
func TestMust(t *testing.T) {
	Must(nil) // must not panic

	func() {
		defer func() {
			if r := recover(); r != "kernel bug" {
				t.Fatalf("recover() = %v, want kernel bug", r)
			}
		}()
		Must(&PanicError{Value: "kernel bug"})
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Must(ordinary error) did not panic")
			}
		}()
		Must(errors.New("other"))
	}()
}

// TestSetWorkers checks the default-pool swap and shared-pool memoization.
func TestSetWorkers(t *testing.T) {
	prev := Workers()
	defer SetWorkers(prev)

	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	p3 := Default()
	SetWorkers(5)
	SetWorkers(3)
	if Default() != p3 {
		t.Fatal("shared pool for workers=3 was not memoized")
	}
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() after SetWorkers(0) = %d, want 1", Workers())
	}
}

// TestPoolCloseIdempotent checks double-Close does not panic.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(4)
	p.Close()
	p.Close()
}

// TestForZeroAndNegativeN checks degenerate ranges are no-ops.
func TestForZeroAndNegativeN(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if err := For(context.Background(), n, 8, func(lo, hi int) {
			t.Fatalf("chunk ran for n=%d", n)
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}
