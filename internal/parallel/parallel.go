// Package parallel is the shared worker pool behind every data-parallel
// prover kernel: NTT butterfly layers, Poseidon leaf hashing and Merkle
// level compression, FRI folding and batched opening, and the coset
// quotient evaluations of the Plonk and Stark provers. It is the software
// analogue of fanning a kernel across UniZK's vector systolic array
// (paper §5): the hardware exploits the fact that butterflies within a
// layer, hashes within a tree level, and per-point vector operations are
// independent, and the pool exploits exactly the same independence across
// CPU cores.
//
// Determinism contract: For splits [0,n) into fixed-size chunks computed
// only from (n, grain) — never from the worker count — and callers write
// results to disjoint index ranges. Because no output depends on which
// worker ran which chunk or in what order, every parallel kernel is
// bit-identical to its serial execution, which keeps Fiat–Shamir
// transcripts stable. The differential test layer
// (internal/*/parallel_test.go) enforces this across worker counts.
//
// Cancellation contract: For polls its context between chunks and returns
// ctx.Err() promptly, so ProveContext-style cancellation propagates into
// every parallel loop. A panic inside a chunk is captured and returned as
// a *PanicError instead of crashing a worker goroutine or deadlocking the
// waiters.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError wraps a panic recovered from a worker chunk. For returns it
// so the calling goroutine decides whether to re-panic (prover internals
// treat kernel panics as bugs) or classify it (verifier boundaries).
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker's stack at the point of the panic.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in worker: %v\n%s", e.Value, e.Stack)
}

// Pool is a reusable set of worker goroutines. The zero value is not
// usable; construct with NewPool. Workers are spawned once and parked on
// a channel, so repeated For calls (one per NTT layer, per Merkle level,
// …) do not churn goroutines.
type Pool struct {
	workers int
	jobs    chan func()
	closed  atomic.Bool
}

// NewPool returns a pool that runs For bodies on up to workers
// goroutines. The calling goroutine always participates, so workers-1
// helper goroutines are spawned; a 1-worker pool runs everything inline.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, jobs: make(chan func())}
	for i := 0; i < workers-1; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Close releases the pool's helper goroutines. The pool must not be used
// after Close; the shared pools managed by SetWorkers are never closed.
func (p *Pool) Close() {
	if !p.closed.Swap(true) {
		close(p.jobs)
	}
}

// worker parks on the job channel and runs whatever chunk claimers For
// hands it. The range loop exits when the pool is closed.
func (p *Pool) worker() {
	for job := range p.jobs {
		job()
	}
}

// For runs fn(lo, hi) over disjoint subranges covering [0, n), using up
// to the pool's workers. grain is the chunk size; grain <= 0 selects a
// default that depends only on n, keeping chunk boundaries — and
// therefore any per-chunk numerical structure — independent of the
// worker count. fn must write only to indexes in [lo, hi) of any shared
// output; under that contract the result is bit-identical to fn(0, n).
//
// For returns nil on completion, ctx.Err() if the context is cancelled
// before every chunk has run (some chunks may then never execute), or a
// *PanicError wrapping the first panic raised by fn. It never deadlocks:
// helpers are recruited with a non-blocking handoff, and the caller
// itself claims chunks, so nested For calls from inside a worker make
// progress even when every other worker is busy.
func (p *Pool) For(ctx context.Context, n, grain int, fn func(lo, hi int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = defaultGrain(n)
	}
	chunks := (n + grain - 1) / grain

	if chunks == 1 || p.workers == 1 || SerialMode() {
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if pe := runChunk(lo, hi, fn); pe != nil {
				return pe
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		panicked atomic.Pointer[PanicError]
	)
	claim := func() {
		for {
			if stop.Load() {
				return
			}
			if ctx.Err() != nil {
				stop.Store(true)
				return
			}
			c := next.Add(1) - 1
			if c >= int64(chunks) {
				return
			}
			lo := int(c) * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if pe := runChunk(lo, hi, fn); pe != nil {
				panicked.CompareAndSwap(nil, pe)
				stop.Store(true)
				return
			}
		}
	}

	// Recruit helpers with a non-blocking handoff: a helper is only
	// engaged if a pool worker is parked and ready, otherwise the caller
	// absorbs that share of the chunks. This is what makes nested For
	// calls deadlock-free.
	var wg sync.WaitGroup
	helpers := p.workers - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		handed := false
		select {
		case p.jobs <- func() { defer wg.Done(); claim() }:
			handed = true
		default:
		}
		if !handed {
			wg.Done()
		}
	}
	claim()
	wg.Wait()

	if pe := panicked.Load(); pe != nil {
		return pe
	}
	if stop.Load() {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// runChunk executes one chunk, converting a panic into a *PanicError.
func runChunk(lo, hi int, fn func(lo, hi int)) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn(lo, hi)
	return nil
}

// defaultGrain bounds a For call to at most 256 chunks. It is a function
// of n only — see the determinism contract in the package comment.
func defaultGrain(n int) int {
	g := (n + 255) / 256
	if g < 1 {
		g = 1
	}
	return g
}

// serialMode, when set, forces every For call onto the calling goroutine
// regardless of pool size — the differential test layer's reference
// execution.
var serialMode atomic.Bool

// SetSerial switches the package between serial and parallel execution.
// It is a test/debug knob: toggling it while a prover is running is safe
// (each For call reads it once) but pointless.
func SetSerial(on bool) { serialMode.Store(on) }

// SerialMode reports whether serial execution is forced.
func SerialMode() bool { return serialMode.Load() }

// sharedPools memoizes one pool per worker count, so test sweeps over
// worker counts reuse goroutines instead of leaking them.
var (
	sharedMu    sync.Mutex
	sharedPools = map[int]*Pool{}
)

func sharedPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	p, ok := sharedPools[workers]
	if !ok {
		p = NewPool(workers)
		sharedPools[workers] = p
	}
	return p
}

// defaultPool is the pool package-level For uses: GOMAXPROCS-sized by
// default, swappable for differential testing via SetWorkers.
var defaultPool atomic.Pointer[Pool]

func init() {
	defaultPool.Store(sharedPool(runtime.GOMAXPROCS(0)))
}

// Default returns the pool package-level For dispatches to.
func Default() *Pool { return defaultPool.Load() }

// Workers returns the default pool's concurrency bound.
func Workers() int { return Default().Workers() }

// SetWorkers replaces the default pool with a shared pool of the given
// size. It is a test knob (the differential layer sweeps {1, 2, 7,
// NumCPU}); swapping while a prover is mid-flight is not meaningful.
func SetWorkers(n int) { defaultPool.Store(sharedPool(n)) }

// For runs fn over [0, n) on the default pool. See Pool.For.
func For(ctx context.Context, n, grain int, fn func(lo, hi int)) error {
	return Default().For(ctx, n, grain, fn)
}

// FirstError collects the first non-nil error observed by concurrent
// chunks — the idiom for nested kernels (an outer For whose chunks call
// context-aware inner kernels). Which racing error wins is not
// deterministic, but errors only arise on cancellation or panic, where
// the output is discarded anyway.
type FirstError struct {
	mu sync.Mutex
	//unizklint:guardedby mu
	err error
}

// Set records err if it is the first non-nil error.
func (f *FirstError) Set(err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

// Err returns the recorded error, if any.
func (f *FirstError) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Must re-panics a *PanicError and panics on any other non-nil error.
// It is the adapter for legacy context-free entry points (ntt.ForwardNR,
// merkle.Build, …) whose For calls run under context.Background() and
// therefore can only fail by panic.
func Must(err error) {
	if err == nil {
		return
	}
	if pe, ok := err.(*PanicError); ok {
		panic(pe.Value)
	}
	panic(err)
}
