// Package analysistest runs unizklint analyzers over fixture packages
// and checks their diagnostics against // want comments, mirroring the
// conventions of golang.org/x/tools/go/analysis/analysistest (which is
// unavailable offline). A fixture line expects diagnostics like so:
//
//	bad := field.Element(x) // want `bypasses canonicalization`
//
// Each quoted or backquoted fragment is a regular expression that must
// match the message of exactly one diagnostic reported on that line, and
// every diagnostic must be matched by a want. Fixture packages live under
// <testdata>/src/<pkg> and may import real module packages (e.g.
// unizk/internal/field); the loader resolves those against the enclosing
// module.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"unizk/internal/lint"
)

var (
	loaderMu sync.Mutex
	loaders  = map[string]*lint.Loader{}
)

// sharedLoader memoizes loaders per testdata root so fixture runs in one
// test binary share type-checked standard-library and module packages.
func sharedLoader(t *testing.T, testdata string) *lint.Loader {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if l, ok := loaders[testdata]; ok {
		return l
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	modRoot, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoot = filepath.Join(testdata, "src")
	loaders[testdata] = l
	return l
}

// Run analyzes the fixture packages with the analyzer (through the full
// driver, so //unizklint:allow suppression and directive validation are
// active) and reports mismatches against // want comments as test
// failures.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	l := sharedLoader(t, testdata)
	diags, err := lint.Run(l, pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}

	wants := collectWants(t, testdata, pkgs)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, testdata string, pkgs []string) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkg))
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("fixture package %s: %v", pkg, err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", path, i+1)
				for _, pat := range splitPatterns(t, path, i+1, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses the body of a want comment: a sequence of
// backquoted or double-quoted regular expressions.
func splitPatterns(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated backquoted want pattern", file, line)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated quoted want pattern", file, line)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s:%d: want patterns must be quoted or backquoted (at %q)", file, line, s)
		}
	}
	return out
}
