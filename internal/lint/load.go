package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked module-local package: its syntax, its
// type information, and lazily built indexes used by the analyzers.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, in file-name order. Test
	// files are deliberately excluded: the invariants guard production
	// prover/verifier code, and test-only dependencies would otherwise
	// have to be type-checked too.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	funcDecls map[types.Object]*ast.FuncDecl
	varInits  map[types.Object]ast.Expr
}

// FuncDecl returns the declaration of a package-level function or method
// defined in this package, or nil.
func (p *Package) FuncDecl(obj types.Object) *ast.FuncDecl {
	if p.funcDecls == nil {
		p.funcDecls = make(map[types.Object]*ast.FuncDecl)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if o := p.Info.Defs[fd.Name]; o != nil {
						p.funcDecls[o] = fd
					}
				}
			}
		}
	}
	return p.funcDecls[obj]
}

// VarInit returns the initializer expression of a package-level var
// declared in this package, or nil (no initializer, or multi-value
// initialization).
func (p *Package) VarInit(obj types.Object) ast.Expr {
	if p.varInits == nil {
		p.varInits = make(map[types.Object]ast.Expr)
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						if o := p.Info.Defs[name]; o != nil {
							p.varInits[o] = vs.Values[i]
						}
					}
				}
			}
		}
	}
	return p.varInits[obj]
}

// A Loader parses and type-checks module-local packages from source,
// resolving standard-library imports through the toolchain's export
// data. It is the offline stand-in for go/packages.
type Loader struct {
	Fset *token.FileSet
	// ModulePath and ModuleDir anchor "unizk/..." import resolution.
	ModulePath string
	ModuleDir  string
	// ExtraRoot, when non-empty, is a GOPATH-src-style directory checked
	// before the module mapping: import path P resolves to ExtraRoot/P.
	// The analysistest harness points it at a testdata/src tree.
	ExtraRoot string

	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader anchored at the module rooted at moduleDir
// (its go.mod names the module path).
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  moduleDir,
		std:        importer.Default(),
		pkgs:       make(map[string]*Package),
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Loaded returns the package previously loaded under path, or nil. It
// never triggers a load, so it is safe to call from analyzers.
func (l *Loader) Loaded(path string) *Package { return l.pkgs[path] }

// AllLoaded returns every loaded package (analyzed packages and their
// module-local dependencies) in path order.
func (l *Loader) AllLoaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// resolveDir maps an import path to a local source directory, or "" if
// the path is not module-local (standard library).
func (l *Loader) resolveDir(path string) string {
	if l.ExtraRoot != "" {
		dir := filepath.Join(l.ExtraRoot, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
	}
	if path == l.ModulePath {
		if hasGoFiles(l.ModuleDir) {
			return l.ModuleDir
		}
		return ""
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
		if hasGoFiles(dir) {
			return dir
		}
	}
	return ""
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks the package at the given import path
// (module-local or ExtraRoot-relative), memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := l.resolveDir(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: package %q not found locally", path)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: &loaderImporter{l: l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}

	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// loaderImporter adapts the loader to go/types: module-local imports are
// type-checked from source (so their syntax stays available to
// cross-package analyzers); everything else comes from the standard
// importer's export data.
type loaderImporter struct{ l *Loader }

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if li.l.resolveDir(path) != "" {
		p, err := li.l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return li.l.std.Import(path)
}
