package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLife requires every go statement to be tied to a lifecycle
// the rest of the program can observe: a sync.WaitGroup Done/Wait
// pairing in the goroutine body, use of a context.Context (a ctx-done
// select, ctx-aware call, or a ctx argument to a named callee), or a
// range over a channel (the body runs until the producer closes it).
// For a go statement calling a named same-package function, the
// callee's body is inspected one level deep. Everything else is the
// leak class the chaos soaks catch only dynamically, and must carry an
// audited //unizklint:allow goroutinelife(reason).
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: "every goroutine must be tied to a lifecycle: WaitGroup Done/Wait " +
		"pairing, context use, or channel-range; audited exceptions use " +
		"//unizklint:allow goroutinelife(reason)",
	Run: runGoroutineLife,
}

func runGoroutineLife(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goTied(p, gs) {
				p.Reportf(gs.Pos(), "goroutine is not tied to a lifecycle "+
					"(no WaitGroup Done/Wait, context use, or channel-range); "+
					"audited fire-and-forget needs //unizklint:allow goroutinelife(reason)")
			}
			return true
		})
	}
}

// goTied reports whether the go statement's function is observably
// bounded.
func goTied(p *Pass, gs *ast.GoStmt) bool {
	info := p.Pkg.Info
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return bodyTied(info, lit.Body)
	}
	// A context handed to the callee counts: the callee owns the exit
	// condition.
	for _, a := range gs.Call.Args {
		if isContextExpr(info, a) {
			return true
		}
	}
	// One level of same-package callee inspection.
	if fn := calleeFunc(info, gs.Call); fn != nil {
		if fd := p.Pkg.FuncDecl(fn); fd != nil && fd.Body != nil {
			return bodyTied(info, fd.Body)
		}
	}
	return false
}

// bodyTied scans a function body for any of the recognized lifecycle
// ties.
func bodyTied(info *types.Info, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				if isMethodOn(fn, "sync", "WaitGroup", "Done") ||
					isMethodOn(fn, "sync", "WaitGroup", "Wait") {
					tied = true
				}
			}
		case *ast.RangeStmt:
			if t := exprType(info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true
				}
			}
		case ast.Expr:
			if isContextExpr(info, n) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

// exprType resolves the static type of an expression, falling back to
// the Uses map for bare identifiers.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isContextExpr reports whether e has type context.Context.
func isContextExpr(info *types.Info, e ast.Expr) bool {
	t := exprType(info, e)
	return t != nil && isNamed(t, "context", "Context")
}
