package lint

import (
	"go/ast"
	"go/constant"
)

// FieldCanon flags raw conversions of arbitrary integers into Goldilocks
// field values outside internal/field. The field package's contract is
// that every Element is canonical (< p) at all times so equality is plain
// ==; a raw field.Element(x) conversion from a runtime integer bypasses
// the canonicalization in field.New and can silently break equality,
// Fiat–Shamir replay, and the wire format's canonical-encoding check.
// Constant operands below the field order are allowed (canonical by
// construction), as are Element-to-Element conversions.
var FieldCanon = &Analyzer{
	Name: "fieldcanon",
	Doc: "flag raw field.Element conversions and field.Ext literals built " +
		"from arbitrary integers outside internal/field; use field.New",
	Run: runFieldCanon,
}

// goldilocksOrder mirrors field.Order; the analyzer cannot import the
// package it audits without creating a dependency cycle in ./... runs.
const goldilocksOrder uint64 = 0xFFFFFFFF00000001

func runFieldCanon(p *Pass) {
	if p.Pkg.Path == fieldPkgPath {
		return // the field package itself is where canonical form is established
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if len(n.Args) != 1 {
					return true
				}
				tv, ok := info.Types[n.Fun]
				if !ok || !tv.IsType() || !isNamed(tv.Type, fieldPkgPath, "Element") {
					return true
				}
				atv := info.Types[ast.Unparen(n.Args[0])]
				// Constants first: in a conversion an untyped constant is
				// recorded with the converted type, so the Element check
				// below would mistake it for a relabel.
				if atv.Value != nil {
					if constCanonical(atv.Value) {
						return true
					}
				} else if isNamed(atv.Type, fieldPkgPath, "Element") {
					return true // relabeling an already-canonical value
				}
				p.Reportf(n.Pos(), "raw field.Element conversion bypasses canonicalization (breaks == equality for values >= the field order); use field.New")
			case *ast.CompositeLit:
				tv, ok := info.Types[n]
				if !ok || !isNamed(tv.Type, fieldPkgPath, "Ext") {
					return true
				}
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					etv := info.Types[ast.Unparen(v)]
					if etv.Value == nil || constCanonical(etv.Value) {
						continue // typed Elements and canonical constants are fine
					}
					p.Reportf(v.Pos(), "field.Ext literal coefficient is a non-canonical constant (>= the field order); use field.New")
				}
			}
			return true
		})
	}
}

// constCanonical reports whether a constant value is a non-negative
// integer below the Goldilocks order.
func constCanonical(v constant.Value) bool {
	if v == nil {
		return false
	}
	u, ok := constant.Uint64Val(constant.ToInt(v))
	return ok && u < goldilocksOrder
}
