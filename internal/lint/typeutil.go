package lint

import (
	"go/ast"
	"go/types"
)

// Import paths of the packages whose invariants the suite understands.
const (
	fieldPkgPath    = "unizk/internal/field"
	wirePkgPath     = "unizk/internal/wire"
	poseidonPkgPath = "unizk/internal/poseidon"
	prooferrPkgPath = "unizk/internal/prooferr"
)

// isNamed reports whether t (after unaliasing) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeFunc resolves the static *types.Func a call expression invokes
// (package function or method), or nil for builtins, conversions, and
// dynamic calls through function values or interfaces.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isBuiltinCall reports whether the call invokes the universe builtin of
// the given name (panic, make, ...).
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isPkgFunc reports whether fn is the function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// recvNamed returns the named receiver type of a method object (through
// a pointer receiver), or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// isMethodOn reports whether fn is a method named name (or with one of
// the given name prefixes when usePrefix) on pkgPath.typeName.
func isMethodOn(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isErrorType reports whether t is assignable to the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}
