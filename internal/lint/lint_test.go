package lint_test

import (
	"os"
	"testing"

	"unizk/internal/lint"
	"unizk/internal/lint/analysistest"
)

func TestFieldCanon(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FieldCanon, "fieldcanon")
}

func TestWireCheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WireCheck, "wirecheck")
}

func TestProofErrFlow(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ProofErrFlow, "prooferrflow")
}

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxPoll, "ctxpoll")
}

func TestNoDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.NoDeterminism, "nodeterminism")
}

// TestLockGuard covers the guardedby simulation edge cases the issue
// calls out: deferred Unlock, TryLock consulted as an if condition,
// the RWMutex read-vs-write distinction, lock state not leaking out of
// branches, and holds-annotated callees checked at their call sites.
func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockGuard, "lockguard")
}

// TestGoroutineLife includes the goroutine-inside-parallel.Pool-callback
// case: the pool joins its own workers, not what a callback launches.
func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, "testdata", lint.GoroutineLife, "goroutinelife")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AtomicMix, "atomicmix")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "hotalloc")
}

// TestDirectives exercises the //unizklint:allow machinery: a valid
// directive suppresses a finding, and malformed directives (unknown verb,
// unregistered analyzer, missing reason) are findings themselves.
func TestDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FieldCanon, "directive")
}

// TestRepoClean is the tier-1 gate for the tree itself: the full analyzer
// suite must report nothing on the module. This is the same check ci.sh
// runs via cmd/unizklint.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(l, paths, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
