// Annotation-verb helpers shared by the concurrency and hot-path
// analyzers. parseDirectives (driver.go) validates the shape of these
// directives; the functions here read them off the AST nodes they
// decorate:
//
//   - //unizklint:guardedby <mutex> on a struct field (doc or trailing
//     comment) names the sibling mutex that must be held to touch it —
//     consumed by lockguard.
//   - //unizklint:hotpath on a function declaration marks it as an
//     allocation-free kernel — consumed by hotalloc.
//   - //unizklint:holds <path> [<path> ...] on a function declaration
//     states a lock precondition the callers must establish — consumed
//     by lockguard on both sides (the body assumes it, call sites are
//     checked for it).
package lint

import (
	"go/ast"
	"strings"
)

// directiveArgs returns the whitespace-split arguments of the first
// //unizklint:<verb> directive in cg, and whether one was found.
func directiveArgs(cg *ast.CommentGroup, verb string) ([]string, bool) {
	if cg == nil {
		return nil, false
	}
	for _, c := range cg.List {
		text := c.Text
		if rest, ok := strings.CutPrefix(text, "/*"); ok {
			text = strings.TrimSuffix(rest, "*/")
		} else {
			text = strings.TrimPrefix(text, "//")
		}
		text = strings.TrimSpace(text)
		rest, ok := strings.CutPrefix(text, directivePrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 || fields[0] != verb {
			continue
		}
		return fields[1:], true
	}
	return nil, false
}

// fieldGuardedBy returns the mutex field name named by a guardedby
// annotation on a struct field, looking at both the doc comment and the
// trailing line comment.
func fieldGuardedBy(f *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if args, ok := directiveArgs(cg, "guardedby"); ok && len(args) == 1 {
			return args[0], true
		}
	}
	return "", false
}

// funcIsHotpath reports whether fd carries a hotpath annotation.
func funcIsHotpath(fd *ast.FuncDecl) bool {
	_, ok := directiveArgs(fd.Doc, "hotpath")
	return ok
}

// funcHolds returns the lock paths a holds annotation on fd declares as
// caller-established preconditions (e.g. ["s.mu"]), or nil.
func funcHolds(fd *ast.FuncDecl) []string {
	args, ok := directiveArgs(fd.Doc, "holds")
	if !ok {
		return nil
	}
	return args
}
