package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll enforces the ProveContext cancellation invariant (DESIGN.md
// §7): a function that accepts a context.Context promises cooperative
// cancellation, so an unbounded loop (a for statement with no condition)
// inside it must consult the context somewhere in its body — a ctx.Err()
// poll, a ctx.Done() select, or a call that forwards ctx to a callee that
// polls. The FRI proof-of-work grind is the canonical example: it
// searches an unbounded nonce space and checks ctx.Err() every 1024
// iterations.
//
// Bounded loops (with a condition or a range clause) are not flagged:
// the PR 1 design checks cancellation at phase boundaries rather than
// inside every data loop, and a loop over decoded or committed data
// terminates by construction.
//
// Any appearance of the context object in the loop body counts,
// including handing it to a polling combinator such as
// parallel.For(ctx, …) — the worker pool checks ctx between chunks, so a
// loop that drives its iterations through the pool is cancellable. A
// loop that calls parallel.For with some other context (say,
// context.Background()) is still flagged.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "flag unbounded loops in context-accepting functions that never " +
		"consult the context",
	Run: runCtxPoll,
}

func runCtxPoll(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Params == nil {
				continue
			}
			for _, field := range fd.Type.Params.List {
				if !isNamed(info.TypeOf(field.Type), "context", "Context") {
					continue
				}
				for _, name := range field.Names {
					ctxObj := info.Defs[name]
					if ctxObj == nil || name.Name == "_" {
						continue
					}
					checkCtxLoops(p, info, fd, ctxObj)
				}
			}
		}
	}
}

func checkCtxLoops(p *Pass, info *types.Info, fd *ast.FuncDecl, ctxObj types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			return true
		}
		if !usesObject(info, fs.Body, ctxObj) {
			p.Reportf(fs.Pos(), "unbounded loop in a context-accepting function never consults %q; poll ctx.Err() so ProveContext-style cancellation can interrupt it", ctxObj.Name())
		}
		return true
	})
}
