// Package lint implements unizklint, a suite of static analyzers that
// mechanically enforce the prover's safety invariants (DESIGN.md §8).
// PR 1 established these invariants by convention and checked them
// dynamically with the fault-injection harness; this package turns them
// into compile-time rules, the source-level analogue of the
// "verify structure before arithmetic" discipline the paper's hardware
// datapaths enforce.
//
// The nine analyzers:
//
//   - fieldcanon: Goldilocks elements must be canonical (< p) so equality
//     is plain ==. Raw field.Element(x) conversions from arbitrary
//     integers outside internal/field bypass canonicalization; callers
//     must use field.New.
//   - wirecheck: errors from wire.Reader decoding must be consulted, and
//     decoded lengths must be validated before sizing allocations.
//   - prooferrflow: every error returned on a Verify* call graph must
//     wrap the internal/prooferr taxonomy, and panics reachable from a
//     verifier entry point must carry an explicit allow directive.
//   - ctxpoll: a function accepting a context.Context must not contain an
//     unbounded loop that never consults the context (the ProveContext
//     cancellation invariant).
//   - nodeterminism: packages that touch the Fiat–Shamir transcript
//     (direct importers of internal/poseidon) must not use math/rand or
//     time.Now, and must never feed map-iteration order into
//     Challenger observations.
//   - lockguard: struct fields annotated //unizklint:guardedby <mutex>
//     may only be accessed while that sibling mutex is provably held
//     (write access requires write-hold); //unizklint:holds on a
//     function declares a caller-established lock precondition.
//   - goroutinelife: every go statement must be tied to a lifecycle —
//     WaitGroup Done/Wait pairing, context use, or channel-range —
//     or carry an audited allow directive.
//   - atomicmix: a field accessed via sync/atomic anywhere must never
//     be read or written plainly elsewhere.
//   - hotalloc: functions annotated //unizklint:hotpath must avoid
//     allocation-inducing constructs (make/append/new, fmt, string
//     concatenation, field-element boxing, escaping closures); the
//     internal/allocgate AllocsPerRun test pins the same kernels
//     dynamically.
//
// Findings can be suppressed, one site at a time, with a directive on the
// flagged line or the line above, in either form:
//
//	//unizklint:allow <analyzer> <reason>
//	//unizklint:allow <analyzer>(<reason>)
//
// The analyzer name must be one of the nine above and the reason must be
// non-empty; malformed directives are themselves diagnostics. The
// framework is self-contained (no golang.org/x/tools dependency, which
// keeps the gate runnable in offline CI) but mirrors the go/analysis
// Analyzer/Pass shape so the analyzers could be ported to a vet tool
// verbatim.
package lint

import (
	"fmt"
	"go/token"
)

// An Analyzer is one named invariant check over a loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of the rule and the invariant it
	// guards.
	Doc string
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one loaded package plus access to the
// package's already-loaded dependencies (for cross-package call-graph
// rules like prooferrflow).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Dep returns an already-loaded module-local dependency by import
	// path, or nil for standard-library (export-data-only) imports.
	Dep func(path string) *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full unizklint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		FieldCanon, WireCheck, ProofErrFlow, CtxPoll, NoDeterminism,
		LockGuard, GoroutineLife, AtomicMix, HotAlloc,
	}
}

// KnownAnalyzer reports whether name identifies a registered analyzer
// (used to validate allow directives).
func KnownAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}
