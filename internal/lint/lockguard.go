package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard enforces //unizklint:guardedby annotations: a struct field
// annotated as guarded by a sibling mutex may only be read while that
// mutex is held (Lock or RLock) and only be written while it is
// write-held (Lock). "Held" is established by a flow-insensitive
// simulation of the enclosing function body — Lock/Unlock/RLock/RUnlock
// calls on a canonical path (e.g. s.mu), a deferred Unlock (held to
// function end), a TryLock consulted as an if condition (held in the
// then-branch), or a //unizklint:holds annotation declaring the lock a
// caller-established precondition. Call sites of holds-annotated
// functions are in turn checked for the precondition.
//
// The simulation is deliberately conservative: function literals and
// goroutine bodies start with an empty held set, and lock state acquired
// inside a branch does not leak past it. Code that is correct for
// subtler reasons takes an //unizklint:allow lockguard(reason).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated //unizklint:guardedby <mutex> must only be accessed " +
		"with that mutex provably held (write access requires write-hold)",
	Run: runLockGuard,
}

// lockGuardSim carries the per-package state of the simulation.
type lockGuardSim struct {
	pass *Pass
	info *types.Info
	// guards maps an annotated field object to the name of its guarding
	// sibling mutex field.
	guards map[*types.Var]string
}

func runLockGuard(p *Pass) {
	s := &lockGuardSim{pass: p, info: p.Pkg.Info, guards: map[*types.Var]string{}}
	for _, f := range p.Pkg.Files {
		s.collectGuards(f)
	}
	if len(s.guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := map[string]int{}
			for _, h := range funcHolds(fd) {
				held[h] = lockWrite
			}
			s.block(fd.Body.List, held)
		}
	}
}

// Held-set values: a path is absent, read-held (RLock), or write-held.
const (
	lockRead  = 1
	lockWrite = 2
)

// collectGuards records every guardedby-annotated struct field and
// validates that the named mutex is a sibling field of a sync mutex
// type.
func (s *lockGuardSim) collectGuards(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			mutexName, ok := fieldGuardedBy(field)
			if !ok {
				continue
			}
			if !s.validMutexSibling(st, mutexName) {
				s.pass.Reportf(field.Pos(),
					"guardedby names %q, which is not a sibling sync.Mutex/sync.RWMutex field", mutexName)
				continue
			}
			for _, name := range field.Names {
				if v, ok := s.info.Defs[name].(*types.Var); ok {
					s.guards[v] = mutexName
				}
			}
		}
		return true
	})
}

// validMutexSibling reports whether the struct has a field named
// mutexName whose type is sync.Mutex or sync.RWMutex (possibly behind a
// pointer).
func (s *lockGuardSim) validMutexSibling(st *ast.StructType, mutexName string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mutexName {
				continue
			}
			v, ok := s.info.Defs[name].(*types.Var)
			if !ok {
				return false
			}
			t := v.Type()
			if p, ok := types.Unalias(t).(*types.Pointer); ok {
				t = p.Elem()
			}
			return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
		}
	}
	return false
}

// exprPath canonicalizes a selector chain rooted at an identifier
// ("s", "c.base.mu") for use as a held-set key, or "" when the
// expression is not such a chain (indexing, calls, ...).
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// mutexOp classifies call as a mutex method invocation on a canonical
// receiver path, returning the method name ("Lock", "Unlock", "RLock",
// "RUnlock", "TryLock", "TryRLock") and the path, or "", "".
func (s *lockGuardSim) mutexOp(call *ast.CallExpr) (op, path string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(s.info, call)
	if fn == nil {
		return "", ""
	}
	name := fn.Name()
	switch name {
	case "Lock", "Unlock", "TryLock":
		if !isMethodOn(fn, "sync", "Mutex", name) && !isMethodOn(fn, "sync", "RWMutex", name) {
			return "", ""
		}
	case "RLock", "RUnlock", "TryRLock":
		if !isMethodOn(fn, "sync", "RWMutex", name) {
			return "", ""
		}
	default:
		return "", ""
	}
	return name, exprPath(sel.X)
}

func applyMutexOp(held map[string]int, op, path string) {
	switch op {
	case "Lock":
		held[path] = lockWrite
	case "RLock":
		if held[path] < lockRead {
			held[path] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(held, path)
	}
}

func cloneHeld(held map[string]int) map[string]int {
	c := make(map[string]int, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// block simulates a statement list, threading held through sequential
// statements.
func (s *lockGuardSim) block(list []ast.Stmt, held map[string]int) {
	for _, st := range list {
		s.stmt(st, held)
	}
}

func (s *lockGuardSim) stmt(st ast.Stmt, held map[string]int) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if op, path := s.mutexOp(call); op != "" && path != "" {
				// A Try* whose result is discarded grants nothing.
				if op == "TryLock" || op == "TryRLock" {
					return
				}
				applyMutexOp(held, op, path)
				return
			}
		}
		s.expr(st.X, held, false)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.expr(r, held, false)
		}
		for _, l := range st.Lhs {
			s.expr(l, held, true)
		}
	case *ast.IncDecStmt:
		s.expr(st.X, held, true)
	case *ast.DeferStmt:
		if op, _ := s.mutexOp(st.Call); op == "Unlock" || op == "RUnlock" {
			// Deferred release: the lock stays held to function end.
			return
		}
		for _, a := range st.Call.Args {
			s.expr(a, held, false)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.block(lit.Body.List, map[string]int{})
		} else {
			s.expr(st.Call.Fun, held, false)
		}
	case *ast.GoStmt:
		// The goroutine runs with an unknown lock picture: its body is
		// simulated with an empty held set. Arguments are evaluated now.
		for _, a := range st.Call.Args {
			s.expr(a, held, false)
		}
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.block(lit.Body.List, map[string]int{})
		} else {
			s.expr(st.Call.Fun, held, false)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r, held, false)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if call, ok := ast.Unparen(st.Cond).(*ast.CallExpr); ok {
			if op, path := s.mutexOp(call); (op == "TryLock" || op == "TryRLock") && path != "" {
				h2 := cloneHeld(held)
				if op == "TryLock" {
					h2[path] = lockWrite
				} else if h2[path] < lockRead {
					h2[path] = lockRead
				}
				s.block(st.Body.List, h2)
				if st.Else != nil {
					s.stmt(st.Else, cloneHeld(held))
				}
				return
			}
		}
		s.expr(st.Cond, held, false)
		s.block(st.Body.List, cloneHeld(held))
		if st.Else != nil {
			s.stmt(st.Else, cloneHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		h2 := cloneHeld(held)
		if st.Cond != nil {
			s.expr(st.Cond, h2, false)
		}
		s.block(st.Body.List, h2)
		if st.Post != nil {
			s.stmt(st.Post, h2)
		}
	case *ast.RangeStmt:
		s.expr(st.X, held, false)
		h2 := cloneHeld(held)
		if st.Key != nil {
			s.expr(st.Key, h2, true)
		}
		if st.Value != nil {
			s.expr(st.Value, h2, true)
		}
		s.block(st.Body.List, h2)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		if st.Tag != nil {
			s.expr(st.Tag, held, false)
		}
		for _, cc := range st.Body.List {
			c := cc.(*ast.CaseClause)
			h2 := cloneHeld(held)
			for _, e := range c.List {
				s.expr(e, h2, false)
			}
			s.block(c.Body, h2)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init, held)
		}
		s.stmt(st.Assign, held)
		for _, cc := range st.Body.List {
			c := cc.(*ast.CaseClause)
			s.block(c.Body, cloneHeld(held))
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			c := cc.(*ast.CommClause)
			h2 := cloneHeld(held)
			if c.Comm != nil {
				s.stmt(c.Comm, h2)
			}
			s.block(c.Body, h2)
		}
	case *ast.BlockStmt:
		s.block(st.List, held)
	case *ast.SendStmt:
		s.expr(st.Chan, held, false)
		s.expr(st.Value, held, false)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, held, false)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		s.stmt(st.Stmt, held)
	}
}

func (s *lockGuardSim) expr(e ast.Expr, held map[string]int, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		s.expr(e.X, held, write)
	case *ast.SelectorExpr:
		s.checkSelector(e, held, write)
		s.expr(e.X, held, false)
	case *ast.IndexExpr:
		// Writing an element writes through the container field.
		s.expr(e.X, held, write)
		s.expr(e.Index, held, false)
	case *ast.IndexListExpr:
		s.expr(e.X, held, write)
		for _, i := range e.Indices {
			s.expr(i, held, false)
		}
	case *ast.SliceExpr:
		s.expr(e.X, held, write)
		s.expr(e.Low, held, false)
		s.expr(e.High, held, false)
		s.expr(e.Max, held, false)
	case *ast.StarExpr:
		s.expr(e.X, held, write)
	case *ast.UnaryExpr:
		// Taking the address of a guarded field hands out write access.
		s.expr(e.X, held, write || e.Op == token.AND)
	case *ast.BinaryExpr:
		s.expr(e.X, held, false)
		s.expr(e.Y, held, false)
	case *ast.CallExpr:
		s.call(e, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				// Struct-literal keys are field names, not accesses.
				if _, isIdent := kv.Key.(*ast.Ident); !isIdent {
					s.expr(kv.Key, held, false)
				}
				s.expr(kv.Value, held, false)
			} else {
				s.expr(el, held, false)
			}
		}
	case *ast.TypeAssertExpr:
		s.expr(e.X, held, false)
	case *ast.FuncLit:
		// A literal may run on any goroutine at any time; assume no
		// locks held.
		s.block(e.Body.List, map[string]int{})
	}
}

func (s *lockGuardSim) call(call *ast.CallExpr, held map[string]int) {
	// delete(s.m, k) writes the map.
	if isBuiltinCall(s.info, call, "delete") && len(call.Args) == 2 {
		s.expr(call.Args[0], held, true)
		s.expr(call.Args[1], held, false)
		return
	}
	if fn := calleeFunc(s.info, call); fn != nil {
		if fd := s.pass.Pkg.FuncDecl(fn); fd != nil {
			if holds := funcHolds(fd); len(holds) > 0 {
				s.checkHolds(call, fn, holds, held)
			}
		}
	}
	s.expr(call.Fun, held, false)
	for _, a := range call.Args {
		s.expr(a, held, false)
	}
}

// checkHolds verifies a call site against the callee's holds
// annotation, translating the callee's receiver-relative lock paths
// ("s.mu") into the caller's naming via the call's receiver expression.
func (s *lockGuardSim) checkHolds(call *ast.CallExpr, fn *types.Func, holds []string, held map[string]int) {
	for _, h := range holds {
		req := h
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			base := exprPath(sel.X)
			if base == "" {
				continue // receiver not a canonical path; cannot map
			}
			if i := strings.IndexByte(h, '.'); i >= 0 {
				req = base + h[i:]
			} else {
				req = base + "." + h
			}
		}
		if held[req] < lockWrite {
			s.pass.Reportf(call.Pos(), "call to %s requires %s held (//unizklint:holds)", fn.Name(), req)
		}
	}
}

func (s *lockGuardSim) checkSelector(sel *ast.SelectorExpr, held map[string]int, write bool) {
	v, ok := s.info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	mutexName, guarded := s.guards[v]
	if !guarded {
		return
	}
	base := exprPath(sel.X)
	key := mutexName
	if base != "" {
		key = base + "." + mutexName
	}
	h := held[key]
	switch {
	case write && h < lockWrite:
		if h == lockRead {
			s.pass.Reportf(sel.Sel.Pos(),
				"write to %s requires %s write-held, but only RLock is held", v.Name(), key)
		} else {
			s.pass.Reportf(sel.Sel.Pos(),
				"write to %s requires %s held (//unizklint:guardedby)", v.Name(), key)
		}
	case !write && h < lockRead:
		s.pass.Reportf(sel.Sel.Pos(),
			"read of %s requires %s held (//unizklint:guardedby)", v.Name(), key)
	}
}
