package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation-inducing constructs inside functions
// annotated //unizklint:hotpath — the Goldilocks mul/reduce kernels,
// NTT butterfly layers, batch inversion, Poseidon permutation, Merkle
// verification, and the FRI fold/combine inner loops. These are the
// code paths whose throughput the paper's kernel comparison measures;
// a stray allocation turns a measured kernel into a measured GC.
//
// Flagged constructs:
//
//   - make/new/append builtins (pre-size a reusable buffer instead)
//   - calls into package fmt
//   - non-constant string concatenation
//   - interface boxing of field.Element / field.Ext at a call boundary
//   - capturing closures that escape (passed to a call, returned, or
//     stored); immediately-invoked literals and literals bound to a
//     local that is only ever called are exempt, as the compiler keeps
//     those on the stack
//
// The static gate cross-checks the dynamic one: the AllocsPerRun
// regression test in internal/allocgate pins the runtime allocation
// counts of the same annotated kernels.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //unizklint:hotpath must avoid allocation-" +
		"inducing constructs: make/append/new, fmt, string concatenation, " +
		"interface boxing of field elements, escaping closure captures",
	Run: runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcIsHotpath(fd) {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	parents := parentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, info, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				p.Reportf(n.OpPos, "string concatenation in hotpath allocates; "+
					"hot kernels must not build strings")
			}
		case *ast.FuncLit:
			checkHotClosure(p, info, fd, n, parents)
		}
		return true
	})
}

func checkHotCall(p *Pass, info *types.Info, call *ast.CallExpr) {
	for _, b := range [...]string{"make", "new", "append"} {
		if isBuiltinCall(info, call, b) {
			p.Reportf(call.Pos(), "call to %s in hotpath allocates; "+
				"use a pre-sized reusable buffer", b)
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s in hotpath allocates", fn.Name())
		return
	}
	// Interface boxing of field elements: at an interface-typed
	// parameter (conversions included), a field.Element/Ext argument is
	// heap-boxed per call.
	if fn != nil {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && call.Ellipsis == token.NoPos && i >= params.Len()-1:
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt != nil && types.IsInterface(pt) && isFieldScalar(exprType(info, arg)) {
				p.Reportf(arg.Pos(), "passing a field element to an interface-typed "+
					"parameter of %s boxes it on the heap", fn.Name())
			}
		}
		return
	}
	// Explicit conversion to an interface type: any(x), fmt.Stringer(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && types.IsInterface(tv.Type) &&
		len(call.Args) == 1 && isFieldScalar(exprType(info, call.Args[0])) {
		p.Reportf(call.Args[0].Pos(), "converting a field element to an interface type "+
			"boxes it on the heap")
	}
}

func isFieldScalar(t types.Type) bool {
	return t != nil && (isNamed(t, fieldPkgPath, "Element") || isNamed(t, fieldPkgPath, "Ext"))
}

func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkHotClosure flags a capturing function literal that escapes the
// enclosing hot function.
func checkHotClosure(p *Pass, info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit, parents map[ast.Node]ast.Node) {
	if !closureCaptures(info, fd, lit) {
		return // non-capturing literals are static function values
	}
	parent := parents[lit]
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun == lit {
		return // immediately invoked: runs inline, stays on the stack
	}
	if onlyCalledLocally(info, fd, lit, parents) {
		return
	}
	p.Reportf(lit.Pos(), "capturing closure escapes the hotpath function "+
		"(each call allocates the closure and may force its captures to the heap)")
}

// closureCaptures reports whether lit references a variable declared in
// fd outside the literal itself (receiver, parameter, or local).
func closureCaptures(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() {
			captures = true
		}
		return !captures
	})
	return captures
}

// onlyCalledLocally reports whether lit is bound to a single local
// variable whose every use in fd is as the function of a call — the
// compiler keeps such closures on the stack (the mac-style accumulator
// helper in the Poseidon sparse layer is the canonical instance).
func onlyCalledLocally(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit, parents map[ast.Node]ast.Node) bool {
	asn, ok := parents[lit].(*ast.AssignStmt)
	if !ok || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 || asn.Rhs[0] != ast.Expr(lit) {
		return false
	}
	id, ok := asn.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := types.Object(nil)
	if d := info.Defs[id]; d != nil {
		obj = d
	} else if u := info.Uses[id]; u != nil {
		obj = u
	}
	if obj == nil {
		return false
	}
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		use, ok := n.(*ast.Ident)
		if !ok || info.Uses[use] != obj {
			return true
		}
		call, ok := parents[use].(*ast.CallExpr)
		if !ok || call.Fun != ast.Expr(use) {
			escapes = true
		}
		return !escapes
	})
	return !escapes
}

// parentMap records each node's immediate parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
