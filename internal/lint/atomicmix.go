package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags mixed atomic/plain access: once any site in a package
// passes &x.f to a sync/atomic function, every other read or write of
// that field must also go through sync/atomic. A plain load racing an
// atomic store is undefined behavior the race detector only catches
// when the schedule cooperates; the metrics counters in the service and
// chaos layers are the motivating surface. The typed sync/atomic
// wrappers (atomic.Int64 &co.) make this mistake unrepresentable and
// are the preferred fix.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed via sync/atomic anywhere must never be read or " +
		"written plainly elsewhere; prefer the typed atomic.Int64-style wrappers",
	Run: runAtomicMix,
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info
	// Pass 1: find fields whose address feeds a sync/atomic function,
	// remembering the exact selector nodes inside those calls so pass 2
	// does not flag the atomic sites themselves.
	atomicAt := map[*types.Var]token.Pos{}
	atomicUse := map[*ast.SelectorExpr]bool{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				v, ok := info.Uses[sel.Sel].(*types.Var)
				if !ok || !v.IsField() {
					continue
				}
				if _, seen := atomicAt[v]; !seen {
					atomicAt[v] = sel.Sel.Pos()
				}
				atomicUse[sel] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}
	// Pass 2: any other selector resolving to one of those fields is a
	// plain access.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUse[sel] {
				return true
			}
			v, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok {
				return true
			}
			if first, ok := atomicAt[v]; ok {
				p.Reportf(sel.Sel.Pos(),
					"plain access to %s, which is accessed via sync/atomic at %s; "+
						"use sync/atomic (or a typed atomic.Int64-style field) consistently",
					v.Name(), p.Fset.Position(first))
			}
			return true
		})
	}
}
