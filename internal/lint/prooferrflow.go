package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ProofErrFlow walks the call graphs of the exported Verify* entry
// points and enforces the error contract of DESIGN.md §7: every rejection
// a verifier returns must wrap the internal/prooferr taxonomy (so servers
// can classify malformed vs. rejected proofs with errors.Is), and no
// panic may be reachable from verifier entry points unless the site
// carries an //unizklint:allow prooferrflow directive documenting why the
// panicking condition cannot be driven by proof bytes.
//
// Two findings:
//
//   - a return of a freshly created, unclassified error — errors.New,
//     fmt.Errorf without %w, fmt.Errorf wrapping only unclassified
//     package-level error vars, or a naked unclassified error var;
//   - a panic call in any function reachable from a Verify* entry point
//     (module-local packages only; the walk follows static calls across
//     packages through the loader's syntax).
var ProofErrFlow = &Analyzer{
	Name: "prooferrflow",
	Doc: "flag unclassified error returns and unannotated panics on the " +
		"call graphs of exported Verify* entry points",
	Run: runProofErrFlow,
}

func runProofErrFlow(p *Pass) {
	w := &errFlowWalker{
		pass:     p,
		visited:  make(map[types.Object]bool),
		varClass: make(map[types.Object]bool),
		reported: make(map[int]bool),
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !fd.Name.IsExported() || !strings.HasPrefix(fd.Name.Name, "Verify") {
				continue
			}
			w.walk(p.Pkg, fd)
		}
	}
}

type errFlowWalker struct {
	pass    *Pass
	visited map[types.Object]bool
	// varClass memoizes whether a package-level error var is provably
	// unclassified (its initializer never chains to the prooferr
	// taxonomy).
	varClass map[types.Object]bool
	// reported dedups findings rediscovered from several entry points,
	// keyed by source position.
	reported map[int]bool
}

// walk analyzes one reachable function and enqueues its static callees.
func (w *errFlowWalker) walk(pkg *Package, fd *ast.FuncDecl) {
	obj := pkg.Info.Defs[fd.Name]
	if obj == nil || w.visited[obj] {
		return
	}
	w.visited[obj] = true

	info := pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(info, n, "panic") {
				w.reportOnce(int(n.Pos()), n, "panic reachable from exported Verify* entry points; verifiers must return classified errors (add //unizklint:allow prooferrflow <reason> if the condition cannot be driven by proof bytes)")
				return true
			}
			fn := calleeFunc(info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			target := pkg
			if fn.Pkg().Path() != pkg.Path {
				target = w.pass.Dep(fn.Pkg().Path())
				if target == nil {
					return true // standard library or otherwise out of scope
				}
			}
			if decl := target.FuncDecl(fn); decl != nil && decl.Body != nil {
				w.walk(target, decl)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				w.checkReturnedError(pkg, res)
			}
		}
		return true
	})
}

func (w *errFlowWalker) reportOnce(pos int, n ast.Node, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(n.Pos(), format, args...)
}

// checkReturnedError flags result expressions that produce a fresh
// unclassified error.
func (w *errFlowWalker) checkReturnedError(pkg *Package, res ast.Expr) {
	info := pkg.Info
	tv, ok := info.Types[res]
	if !ok || !isErrorType(tv.Type) {
		return
	}
	switch e := ast.Unparen(res).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(info, e)
		switch {
		case isPkgFunc(fn, "errors", "New"):
			w.reportOnce(int(e.Pos()), e, "verifier returns a naked errors.New error; wrap the prooferr taxonomy (ErrMalformedProof / ErrProofRejected) so callers can classify the rejection")
		case isPkgFunc(fn, "fmt", "Errorf"):
			w.checkErrorf(pkg, e)
		}
	case *ast.Ident, *ast.SelectorExpr:
		if obj := usedObject(info, e); obj != nil && w.isUnclassifiedVar(pkg, obj) {
			w.reportOnce(int(res.Pos()), res, "verifier returns unclassified error var %q; its initializer must wrap the prooferr taxonomy", obj.Name())
		}
	}
}

// checkErrorf flags fmt.Errorf calls that cannot be carrying a
// classification: no %w verb at all, or %w wrapping only error values
// statically known to be unclassified.
func (w *errFlowWalker) checkErrorf(pkg *Package, call *ast.CallExpr) {
	info := pkg.Info
	if len(call.Args) == 0 {
		return
	}
	ftv := info.Types[ast.Unparen(call.Args[0])]
	if ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return // dynamic format string; give it the benefit of the doubt
	}
	if !strings.Contains(constant.StringVal(ftv.Value), "%w") {
		w.reportOnce(int(call.Pos()), call, "verifier returns fmt.Errorf without %%w; the prooferr taxonomy is lost and callers cannot classify the rejection")
		return
	}
	sawError := false
	for _, arg := range call.Args[1:] {
		atv := info.Types[ast.Unparen(arg)]
		if !isErrorType(atv.Type) {
			continue
		}
		sawError = true
		obj := usedObject(info, ast.Unparen(arg))
		if obj == nil || !w.isUnclassifiedVar(pkg, obj) {
			return // wraps a classified var or a dynamic error value
		}
	}
	if sawError {
		w.reportOnce(int(call.Pos()), call, "verifier error wraps only unclassified error vars; chain them to the prooferr taxonomy")
	}
}

// usedObject resolves an identifier or selector to the object it uses.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isUnclassifiedVar reports whether obj is a package-level error var
// whose initializer provably never reaches the prooferr taxonomy.
// Anything it cannot prove unclassified it treats as classified, keeping
// the analyzer's false-positive rate near zero.
func (w *errFlowWalker) isUnclassifiedVar(pkg *Package, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	// The taxonomy itself is the root of classification.
	if v.Pkg().Path() == prooferrPkgPath {
		return false
	}
	if cls, ok := w.varClass[obj]; ok {
		return cls
	}
	w.varClass[obj] = false // cycle guard: assume classified while resolving

	home := pkg
	if v.Pkg().Path() != pkg.Path {
		home = w.pass.Dep(v.Pkg().Path())
		if home == nil {
			return false
		}
	}
	init := home.VarInit(obj)
	if init == nil {
		return false
	}
	unclassified := false
	if call, ok := ast.Unparen(init).(*ast.CallExpr); ok {
		fn := calleeFunc(home.Info, call)
		switch {
		case isPkgFunc(fn, "errors", "New"):
			unclassified = true
		case isPkgFunc(fn, "fmt", "Errorf"):
			unclassified = w.errorfUnclassified(home, call)
		}
	}
	w.varClass[obj] = unclassified
	return unclassified
}

// errorfUnclassified reports whether a fmt.Errorf initializer provably
// fails to chain to the taxonomy.
func (w *errFlowWalker) errorfUnclassified(pkg *Package, call *ast.CallExpr) bool {
	info := pkg.Info
	if len(call.Args) == 0 {
		return true
	}
	ftv := info.Types[ast.Unparen(call.Args[0])]
	if ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return false
	}
	if !strings.Contains(constant.StringVal(ftv.Value), "%w") {
		return true
	}
	for _, arg := range call.Args[1:] {
		atv := info.Types[ast.Unparen(arg)]
		if !isErrorType(atv.Type) {
			continue
		}
		obj := usedObject(info, ast.Unparen(arg))
		if obj == nil || !w.isUnclassifiedVar(pkg, obj) {
			return false
		}
	}
	// Either every wrapped error is unclassified, or %w had no error
	// operand at all; neither can carry the taxonomy.
	return true
}
