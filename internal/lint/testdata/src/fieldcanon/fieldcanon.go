// Fixture for the fieldcanon analyzer.
package fieldcanon

import "unizk/internal/field"

func badRuntime(x uint64) field.Element {
	return field.Element(x) // want `bypasses canonicalization`
}

func badBig() field.Element {
	return field.Element(0xFFFFFFFF00000001) // want `bypasses canonicalization`
}

func badExt() field.Ext {
	return field.Ext{A: 0xFFFFFFFF00000002, B: field.New(1)} // want `non-canonical constant`
}

func goodNew(x uint64) field.Element {
	return field.New(x)
}

func goodRelabel(e field.Element) field.Element {
	same := field.Element(e) // Element-to-Element relabel is canonical already
	return same
}

func goodConst() field.Element {
	return field.Element(7) // constant below the order is canonical
}

func goodSliceConversion(e field.Element) []field.Element {
	return append([]field.Element(nil), e)
}

func goodExt(a, b field.Element) field.Ext {
	return field.Ext{A: a, B: b}
}

func goodExtConst() field.Ext {
	return field.Ext{A: 1, B: 2}
}
