// Fixture for the nodeterminism analyzer. Importing poseidon puts the
// package in the transcript-adjacent scope.
package nodeterminism

import (
	"math/rand" // want `math/rand in a transcript-adjacent package`
	"time"

	"unizk/internal/field"
	"unizk/internal/poseidon"
)

func seedFromClock(ch *poseidon.Challenger) {
	now := time.Now() // want `time.Now in a transcript-adjacent package`
	ch.Observe(field.New(uint64(now.UnixNano())))
	ch.Observe(field.New(rand.Uint64()))
}

func observeMap(ch *poseidon.Challenger, m map[int]field.Element) {
	for _, v := range m { // want `map iteration order is nondeterministic`
		ch.Observe(v)
	}
}

func observeSorted(ch *poseidon.Challenger, keys []int, m map[int]field.Element) {
	for _, k := range keys {
		ch.Observe(m[k])
	}
}

func countMap(m map[int]field.Element) int {
	total := 0
	for range m { // map iteration without transcript writes is fine
		total++
	}
	return total
}

func allowedClock() time.Duration {
	//unizklint:allow nodeterminism telemetry only, the value never reaches the transcript
	start := time.Now()
	return time.Since(start)
}
