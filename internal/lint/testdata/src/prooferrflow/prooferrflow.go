// Fixture for the prooferrflow analyzer.
package prooferrflow

import (
	"errors"
	"fmt"

	"unizk/internal/prooferr"
)

var errLocal = errors.New("local: bad proof")

var errClassified = fmt.Errorf("local: %w", prooferr.ErrProofRejected)

func VerifyThing(ok bool) error {
	if !ok {
		return errors.New("nope") // want `naked errors.New`
	}
	return helper(ok)
}

func helper(ok bool) error {
	if !ok {
		return fmt.Errorf("helper failed") // want `without %w`
	}
	return deeper(ok)
}

func deeper(ok bool) error {
	checkInvariant(ok)
	switch {
	case !ok:
		return errLocal // want `unclassified error var`
	case ok:
		return fmt.Errorf("wrapped: %w", errLocal) // want `wraps only unclassified`
	}
	return nil
}

func checkInvariant(ok bool) {
	if !ok {
		panic("invariant") // want `panic reachable`
	}
}

func trustedInvariant(ok bool) {
	if !ok {
		//unizklint:allow prooferrflow condition depends on trusted config, not proof bytes
		panic("trusted invariant")
	}
}

func VerifyOther(ok bool) error {
	trustedInvariant(ok)
	if !ok {
		return fmt.Errorf("other: %w", errClassified)
	}
	if ok {
		return fmt.Errorf("other: %w", prooferr.ErrMalformedProof)
	}
	return nil
}

// proverSide is on no Verify* call graph, so its panic is out of scope.
func proverSide() {
	panic("prover invariant")
}
