// Fixture for the atomicmix analyzer.
package atomicmix

import "sync/atomic"

type stats struct {
	hits  int64
	skips int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) load() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) badRead() int64 {
	return s.hits // want `plain access to hits`
}

func (s *stats) badWrite() {
	s.hits = 0 // want `plain access to hits`
}

// skips is never touched atomically, so plain access is fine.
func (s *stats) plainOnly() int64 {
	s.skips++
	return s.skips
}

// The typed wrappers make mixing unrepresentable; nothing to flag.
type typed struct {
	n atomic.Int64
}

func (t *typed) fine() int64 {
	t.n.Add(1)
	return t.n.Load()
}

func (s *stats) allowedSnapshot() int64 {
	//unizklint:allow atomicmix(read after all writers joined; no concurrent access remains)
	return s.hits
}
