// Fixture for the lockguard analyzer.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	//unizklint:guardedby mu
	n int
}

func (c *counter) goodAdd() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) goodDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func (c *counter) badRead() int {
	return c.n // want `read of n requires c\.mu held`
}

func (c *counter) badWrite() {
	c.n = 7 // want `write to n requires c\.mu held`
}

func (c *counter) badAfterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `read of n requires c\.mu held`
}

func (c *counter) tryLock() {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	}
	c.n = 0 // want `write to n requires c\.mu held`
}

// bumpLocked documents its precondition; the body may then touch n
// freely, and call sites are checked instead.
//
//unizklint:holds c.mu
func (c *counter) bumpLocked() { c.n++ }

func (c *counter) goodCaller() {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
}

func (c *counter) badCaller() {
	c.bumpLocked() // want `call to bumpLocked requires c\.mu held`
}

func (c *counter) allowed() int {
	//unizklint:allow lockguard(single-goroutine during construction, provably unshared)
	return c.n
}

func (c *counter) goroutineStartsCold() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `write to n requires c\.mu held`
	}()
}

// rw exercises the RWMutex read-vs-write distinction.
type rw struct {
	mu sync.RWMutex
	m  map[string]int //unizklint:guardedby mu
}

func (r *rw) goodReadLocked(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *rw) badWriteUnderRLock(k string) {
	r.mu.RLock()
	r.m[k] = 1 // want `write to m requires r\.mu write-held, but only RLock is held`
	r.mu.RUnlock()
}

func (r *rw) goodWriteLocked(k string) {
	r.mu.Lock()
	r.m[k] = 1
	r.mu.Unlock()
}

func (r *rw) branchLockDoesNotLeak(k string) int {
	if k != "" {
		r.mu.RLock()
		defer r.mu.RUnlock()
	}
	return r.m[k] // want `read of m requires r\.mu held`
}

type unmoored struct {
	//unizklint:guardedby lock
	x int // want `guardedby names "lock", which is not a sibling sync\.Mutex/sync\.RWMutex field`
}

func use(u *unmoored) int { return u.x }
