// Fixture for //unizklint: directive parsing and validation, run with the
// fieldcanon analyzer. Malformed directives use block-comment form so the
// expectation comment can share the line.
package directive

import "unizk/internal/field"

func suppressed(x uint64) field.Element {
	//unizklint:allow fieldcanon caller masks the value below 2^16, provably canonical
	return field.Element(x & 0xFFFF)
}

/*unizklint:deny fieldcanon nope*/ // want `unknown unizklint directive`

/*unizklint:allow nosuchanalyzer because reasons*/ // want `names no registered analyzer`

/*unizklint:allow fieldcanon*/ // want `empty reason`

/*unizklint:allow fieldcanon()*/ // want `empty reason`

/*unizklint:allow nosuchanalyzer(because reasons)*/ // want `names no registered analyzer`

/*unizklint:guardedby*/ // want `guardedby directive needs exactly one sibling mutex field name`

/*unizklint:hotpath extra*/ // want `hotpath directive takes no arguments`

/*unizklint:holds*/ // want `holds directive needs at least one lock path`

func flagged(x uint64) field.Element {
	return field.Element(x) // want `bypasses canonicalization`
}

// The paren form carries the reason inside parentheses.
func suppressedParen(x uint64) field.Element {
	//unizklint:allow fieldcanon(caller masks the value below 2^16, provably canonical)
	return field.Element(x & 0xFFFF)
}
