// Fixture for the goroutinelife analyzer.
package goroutinelife

import (
	"context"
	"sync"

	"unizk/internal/parallel"
)

func leak() {
	go func() { // want `goroutine is not tied to a lifecycle`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func wgTied(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func chanTied(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func worker(ctx context.Context) { <-ctx.Done() }

func namedCtxArg(ctx context.Context) {
	go worker(ctx)
}

func drain(ch chan int) {
	for range ch {
	}
}

func namedCalleeBody(ch chan int) {
	go drain(ch)
}

func spin() {}

func namedLeak() {
	go spin() // want `goroutine is not tied to a lifecycle`
}

// A goroutine spawned inside a parallel.Pool callback is still a
// goroutine: the pool joins its own workers, not what the callback
// launches.
func insidePoolCallback(ctx context.Context, pool *parallel.Pool, n int) error {
	return pool.For(ctx, n, 1, func(lo, hi int) {
		go func() { // want `goroutine is not tied to a lifecycle`
			_ = lo
		}()
	})
}

func allowed() {
	//unizklint:allow goroutinelife(fire-and-forget log flush, bounded by process lifetime)
	go func() {
	}()
}
