// Fixture for the hotalloc analyzer.
package hotalloc

import (
	"fmt"

	"unizk/internal/field"
)

//unizklint:hotpath
func badMake(n int) []uint64 {
	out := make([]uint64, n) // want `call to make in hotpath allocates`
	return out
}

//unizklint:hotpath
func badAppend(dst []uint64, v uint64) []uint64 {
	return append(dst, v) // want `call to append in hotpath allocates`
}

//unizklint:hotpath
func badNew() *uint64 {
	return new(uint64) // want `call to new in hotpath allocates`
}

//unizklint:hotpath
func badFmt(x uint64) string {
	return fmt.Sprintf("%d", x) // want `fmt\.Sprintf in hotpath allocates`
}

//unizklint:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation in hotpath allocates`
}

func sink(v any) { _ = v }

//unizklint:hotpath
func badBox(x field.Element) {
	sink(x) // want `boxes it on the heap`
}

//unizklint:hotpath
func badConvert(x field.Element) any {
	return any(x) // want `boxes it on the heap`
}

//unizklint:hotpath
func badClosure(xs []field.Element, apply func(func())) {
	apply(func() { // want `capturing closure escapes`
		xs[0] = xs[1]
	})
}

// A closure bound to a local and only ever called stays on the stack
// (the mac-style accumulator in the Poseidon sparse layer).
//
//unizklint:hotpath
func goodLocalClosure(xs []field.Element) field.Element {
	var acc field.Element
	mac := func(i int) { acc = field.Add(acc, xs[i]) }
	mac(0)
	mac(1)
	return acc
}

//unizklint:hotpath
func goodImmediate(xs []field.Element) field.Element {
	return func() field.Element { return xs[0] }()
}

// Non-capturing literals are static function values; no allocation.
//
//unizklint:hotpath
func goodNonCapturing(apply func(func(field.Element) field.Element)) {
	apply(func(x field.Element) field.Element { return x })
}

// Unannotated functions are out of scope.
func coldMake(n int) []uint64 {
	return make([]uint64, n)
}

//unizklint:hotpath
func allowedScratch(n int) []uint64 {
	//unizklint:allow hotalloc(setup-time scratch, amortized across the whole proof)
	return make([]uint64, n)
}
