// Fixture for the ctxpoll analyzer.
package ctxpoll

import (
	"context"

	"unizk/internal/parallel"
)

func spin(ctx context.Context, work func() bool) error {
	for { // want `never consults`
		if work() {
			return nil
		}
	}
}

func polite(ctx context.Context, work func() bool) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if work() {
			return nil
		}
	}
}

func forwarded(ctx context.Context, step func(context.Context) bool) {
	for {
		if step(ctx) {
			return
		}
	}
}

func bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func noCtx(work func() bool) {
	for {
		if work() {
			return
		}
	}
}

// pooled drives its unbounded loop through parallel.For(ctx, …), which
// polls the context between chunks — that counts as consulting ctx.
func pooled(ctx context.Context, next func() ([]int, bool)) error {
	for {
		batch, more := next()
		if err := parallel.For(ctx, len(batch), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				batch[i]++
			}
		}); err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// pooledIgnoresCtx recruits the pool but hands it a fresh background
// context instead of its own — the loop is still uncancellable and must
// be flagged.
func pooledIgnoresCtx(ctx context.Context, next func() ([]int, bool)) {
	for { // want `never consults`
		batch, more := next()
		_ = parallel.For(context.Background(), len(batch), 1, func(lo, hi int) {})
		if !more {
			return
		}
	}
}

// retryLoop mirrors the resilient client's do loop: an unbounded
// attempt loop whose backoff sleep selects on ctx.Done — the select
// counts as consulting ctx.
func retryLoop(ctx context.Context, attempt func() error, sleep <-chan struct{}) error {
	for i := 1; ; i++ {
		err := attempt()
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-sleep:
		}
	}
}

// retryLoopNoCtx is the same shape with the ctx arm missing: the loop
// spins (and sleeps) forever after cancellation and must be flagged.
func retryLoopNoCtx(ctx context.Context, attempt func() error, sleep <-chan struct{}) error {
	for i := 1; ; i++ { // want `never consults`
		if attempt() == nil {
			return nil
		}
		<-sleep
	}
}

type queue struct{ items chan int }

func (q *queue) pop(ctx context.Context) (int, error) {
	select {
	case v := <-q.items:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// scheduler mirrors the proving service's runner loop: the unbounded
// loop blocks in pop(ctx), which returns once ctx is canceled — the
// forwarded ctx counts as consulting it.
func scheduler(ctx context.Context, q *queue, run func(int)) {
	for {
		v, err := q.pop(ctx)
		if err != nil {
			return
		}
		run(v)
	}
}

// probeLoop mirrors the cluster coordinator's per-node prober: an
// unbounded ticker loop whose select has a ctx.Done arm — that arm
// counts as consulting ctx.
func probeLoop(ctx context.Context, tick <-chan struct{}, probe func()) {
	for {
		probe()
		select {
		case <-ctx.Done():
			return
		case <-tick:
		}
	}
}

// redispatchLoopNoCtx is the coordinator's placement/failover shape
// with the ctx consultation missing: after cancellation it would keep
// picking nodes and re-dispatching forever and must be flagged.
func redispatchLoopNoCtx(ctx context.Context, pick func() bool, dispatch func() error) {
	for { // want `never consults`
		if !pick() {
			continue
		}
		if dispatch() == nil {
			return
		}
	}
}

// snapshotCompactLoop mirrors the journal's snapshot/compaction loop:
// an unbounded cadence loop whose sleep selects on ctx.Done — the
// select counts as consulting ctx.
func snapshotCompactLoop(ctx context.Context, tick <-chan struct{}, due func() bool, compact func()) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
		}
		if due() {
			compact()
		}
	}
}

// replayRequeueNoCtx mirrors a crash-recovery requeue loop with the
// ctx consultation missing: replayed jobs are pushed until the queue
// accepts them, so after cancellation it would spin on a full queue
// forever and must be flagged.
func replayRequeueNoCtx(ctx context.Context, replayed []int, push func(int) bool) {
	for _, j := range replayed {
		for { // want `never consults`
			if push(j) {
				break
			}
		}
	}
}
