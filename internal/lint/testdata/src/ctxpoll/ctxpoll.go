// Fixture for the ctxpoll analyzer.
package ctxpoll

import "context"

func spin(ctx context.Context, work func() bool) error {
	for { // want `never consults`
		if work() {
			return nil
		}
	}
}

func polite(ctx context.Context, work func() bool) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if work() {
			return nil
		}
	}
}

func forwarded(ctx context.Context, step func(context.Context) bool) {
	for {
		if step(ctx) {
			return
		}
	}
}

func bounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func noCtx(work func() bool) {
	for {
		if work() {
			return
		}
	}
}
