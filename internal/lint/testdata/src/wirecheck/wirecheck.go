// Fixture for the wirecheck analyzer.
package wirecheck

import "unizk/internal/wire"

func dropped(data []byte) uint64 {
	r := wire.NewReader(data)
	v := r.U64()
	r.Done() // want `is discarded`
	return v
}

func unchecked(data []byte) uint64 {
	r := wire.NewReader(data) // want `never consulted`
	v := r.U64()
	return v
}

func escapes(data []byte) *wire.Reader {
	r := wire.NewReader(data)
	_ = r.U64()
	return r // the caller inherits the Done obligation
}

func checked(data []byte) (uint64, error) {
	r := wire.NewReader(data)
	v := r.U64()
	if err := r.Done(); err != nil {
		return 0, err
	}
	return v, nil
}

func sizedDirectly(data []byte) []uint64 {
	r := wire.NewReader(data)
	out := make([]uint64, r.Len()) // want `sized directly`
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

func sizedUnvalidated(data []byte) []uint64 {
	r := wire.NewReader(data)
	n := r.Len()
	out := make([]uint64, n) // want `unvalidated`
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

func sizedValidated(data []byte, max int) []uint64 {
	r := wire.NewReader(data)
	n := r.Len()
	if n > max {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}
