// Fixture for the wirecheck analyzer.
package wirecheck

import "unizk/internal/wire"

func dropped(data []byte) uint64 {
	r := wire.NewReader(data)
	v := r.U64()
	r.Done() // want `is discarded`
	return v
}

func unchecked(data []byte) uint64 {
	r := wire.NewReader(data) // want `never consulted`
	v := r.U64()
	return v
}

func escapes(data []byte) *wire.Reader {
	r := wire.NewReader(data)
	_ = r.U64()
	return r // the caller inherits the Done obligation
}

func checked(data []byte) (uint64, error) {
	r := wire.NewReader(data)
	v := r.U64()
	if err := r.Done(); err != nil {
		return 0, err
	}
	return v, nil
}

func sizedDirectly(data []byte) []uint64 {
	r := wire.NewReader(data)
	out := make([]uint64, r.Len()) // want `sized directly`
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

func sizedUnvalidated(data []byte) []uint64 {
	r := wire.NewReader(data)
	n := r.Len()
	out := make([]uint64, n) // want `unvalidated`
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

func sizedValidated(data []byte, max int) []uint64 {
	r := wire.NewReader(data)
	n := r.Len()
	if n > max {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

// Uvarint decodes an attacker-controlled count with no remaining-bytes
// cap of its own, so it is a length source exactly like Len.

func uvarintSizedDirectly(data []byte) []uint64 {
	r := wire.NewReader(data)
	out := make([]uint64, r.Uvarint()) // want `sized directly by \(\*wire\.Reader\)\.Uvarint`
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

func uvarintSizedThroughConversion(data []byte) []uint64 {
	r := wire.NewReader(data)
	n := int(r.Uvarint())
	out := make([]uint64, n) // want `unvalidated`
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

func uvarintSizedValidated(data []byte, max int) []uint64 {
	r := wire.NewReader(data)
	n := int(r.Uvarint())
	if n > max {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

// Str and Blob cap their own lengths inside the reader, but they are
// still decodes: dropping the sticky error afterwards is rule 1/2
// territory.

func strDropped(data []byte) string {
	r := wire.NewReader(data)
	s := r.Str()
	r.Done() // want `is discarded`
	return s
}

func blobUnchecked(data []byte) []byte {
	r := wire.NewReader(data) // want `never consulted`
	b := r.Blob()
	return b
}

func strBlobChecked(data []byte) (string, []byte, error) {
	r := wire.NewReader(data)
	s := r.Str()
	b := r.Blob()
	if err := r.Done(); err != nil {
		return "", nil, err
	}
	return s, b, nil
}
