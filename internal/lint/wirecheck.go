package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireCheck enforces the decode-side discipline of the proof wire format:
// wire.Reader is a sticky-error decoder, so its error must actually be
// consulted, and lengths it decodes are attacker-controlled, so they must
// be validated before sizing an allocation.
//
// Three rules:
//
//  1. The results of (*wire.Reader).Done and (*wire.Reader).Err must not
//     be discarded.
//  2. A function that constructs a reader with wire.NewReader and decodes
//     from it must consult Done or Err before returning (unless the
//     reader itself escapes via return, handing the obligation to the
//     caller).
//  3. A length obtained from (*wire.Reader).Len or decoded by
//     (*wire.Reader).Uvarint — directly or through integer conversions —
//     must not flow into a make() size without an intervening comparison
//     validating it. (Str and Blob cap their own lengths against the
//     remaining input inside the reader; Uvarint has no such cap.)
var WireCheck = &Analyzer{
	Name: "wirecheck",
	Doc: "flag dropped wire.Reader errors and decoded lengths used to " +
		"allocate before validation",
	Run: runWireCheck,
}

func runWireCheck(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDroppedReaderErrors(p, info, fd)
			checkUncheckedReaders(p, info, fd)
			checkUnvalidatedLengths(p, info, fd)
		}
	}
}

// checkDroppedReaderErrors implements rule 1: Done()/Err() as a bare
// statement throws the one error signal the sticky reader has.
func checkDroppedReaderErrors(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if isMethodOn(fn, wirePkgPath, "Reader", "Done") || isMethodOn(fn, wirePkgPath, "Reader", "Err") {
			p.Reportf(call.Pos(), "result of (*wire.Reader).%s is discarded; the sticky decode error must be checked", fn.Name())
		}
		return true
	})
}

// checkUncheckedReaders implements rule 2.
func checkUncheckedReaders(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Readers created in this function, keyed by the variable object.
	created := map[types.Object]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isPkgFunc(calleeFunc(info, call), wirePkgPath, "NewReader") {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					created[obj] = call.Pos()
				} else if obj := info.Uses[id]; obj != nil {
					created[obj] = call.Pos()
				}
			}
		}
		return true
	})
	if len(created) == 0 {
		return
	}

	decoded := map[types.Object]bool{}
	checked := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if _, isReader := created[obj]; !isReader {
				return true
			}
			switch {
			case isMethodOn(fn, wirePkgPath, "Reader", "Done"),
				isMethodOn(fn, wirePkgPath, "Reader", "Err"):
				checked[obj] = true
			case isMethodOn(fn, wirePkgPath, "Reader", fn.Name()):
				decoded[obj] = true
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for obj := range created {
					if usesObject(info, res, obj) {
						escaped[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj, pos := range created {
		if decoded[obj] && !checked[obj] && !escaped[obj] {
			p.Reportf(pos, "proof bytes decoded from this wire.Reader but Done/Err is never consulted; truncated or corrupt input would be accepted silently")
		}
	}
}

// checkUnvalidatedLengths implements rule 3: any make() whose size comes
// from (*wire.Reader).Len or (*wire.Reader).Uvarint — directly, through
// integer conversions, or through a variable that is never compared
// against anything — allocates attacker-controlled amounts of memory
// before validation.
func checkUnvalidatedLengths(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	// lenSource resolves an expression (unwrapping parens and integer
	// conversions like int(r.Uvarint())) to the Reader method that
	// produced the attacker-controlled length, or "".
	var lenSource func(e ast.Expr) string
	lenSource = func(e ast.Expr) string {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return ""
		}
		if fn := calleeFunc(info, call); fn != nil {
			switch {
			case isMethodOn(fn, wirePkgPath, "Reader", "Len"):
				return "Len"
			case isMethodOn(fn, wirePkgPath, "Reader", "Uvarint"):
				return "Uvarint"
			}
			return ""
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return lenSource(call.Args[0])
		}
		return ""
	}
	// unwrapConversions peels int(n)-style conversions off a make size
	// so the variable underneath is still recognized.
	unwrapConversions := func(e ast.Expr) ast.Expr {
		for {
			e = ast.Unparen(e)
			call, ok := e.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return e
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return e
			}
			e = call.Args[0]
		}
	}

	// Variables assigned from a length source.
	lenVars := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || lenSource(as.Rhs[0]) == "" {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					lenVars[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					lenVars[obj] = true
				}
			}
		}
		return true
	})

	// A comparison anywhere in the function counts as validation: the
	// idiomatic guard is `if n > bound { ... }` or a loop condition.
	validated := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for obj := range lenVars {
			if usesObject(info, be, obj) {
				validated[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinCall(info, call, "make") || len(call.Args) < 2 {
			return true
		}
		size := ast.Unparen(call.Args[1])
		if src := lenSource(size); src != "" {
			p.Reportf(call.Pos(), "make() sized directly by (*wire.Reader).%s; validate the decoded length against the remaining input first", src)
			return true
		}
		if id, ok := unwrapConversions(size).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && lenVars[obj] && !validated[obj] {
				p.Reportf(call.Pos(), "make() sized by an unvalidated wire-decoded length %q; compare it against the remaining input first", id.Name)
			}
		}
		return true
	})
}
