package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireCheck enforces the decode-side discipline of the proof wire format:
// wire.Reader is a sticky-error decoder, so its error must actually be
// consulted, and lengths it decodes are attacker-controlled, so they must
// be validated before sizing an allocation.
//
// Three rules:
//
//  1. The results of (*wire.Reader).Done and (*wire.Reader).Err must not
//     be discarded.
//  2. A function that constructs a reader with wire.NewReader and decodes
//     from it must consult Done or Err before returning (unless the
//     reader itself escapes via return, handing the obligation to the
//     caller).
//  3. A length obtained from (*wire.Reader).Len must not flow into a
//     make() size without an intervening comparison validating it.
var WireCheck = &Analyzer{
	Name: "wirecheck",
	Doc: "flag dropped wire.Reader errors and decoded lengths used to " +
		"allocate before validation",
	Run: runWireCheck,
}

func runWireCheck(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDroppedReaderErrors(p, info, fd)
			checkUncheckedReaders(p, info, fd)
			checkUnvalidatedLengths(p, info, fd)
		}
	}
}

// checkDroppedReaderErrors implements rule 1: Done()/Err() as a bare
// statement throws the one error signal the sticky reader has.
func checkDroppedReaderErrors(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if isMethodOn(fn, wirePkgPath, "Reader", "Done") || isMethodOn(fn, wirePkgPath, "Reader", "Err") {
			p.Reportf(call.Pos(), "result of (*wire.Reader).%s is discarded; the sticky decode error must be checked", fn.Name())
		}
		return true
	})
}

// checkUncheckedReaders implements rule 2.
func checkUncheckedReaders(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	// Readers created in this function, keyed by the variable object.
	created := map[types.Object]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isPkgFunc(calleeFunc(info, call), wirePkgPath, "NewReader") {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					created[obj] = call.Pos()
				} else if obj := info.Uses[id]; obj != nil {
					created[obj] = call.Pos()
				}
			}
		}
		return true
	})
	if len(created) == 0 {
		return
	}

	decoded := map[types.Object]bool{}
	checked := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if _, isReader := created[obj]; !isReader {
				return true
			}
			switch {
			case isMethodOn(fn, wirePkgPath, "Reader", "Done"),
				isMethodOn(fn, wirePkgPath, "Reader", "Err"):
				checked[obj] = true
			case isMethodOn(fn, wirePkgPath, "Reader", fn.Name()):
				decoded[obj] = true
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for obj := range created {
					if usesObject(info, res, obj) {
						escaped[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj, pos := range created {
		if decoded[obj] && !checked[obj] && !escaped[obj] {
			p.Reportf(pos, "proof bytes decoded from this wire.Reader but Done/Err is never consulted; truncated or corrupt input would be accepted silently")
		}
	}
}

// checkUnvalidatedLengths implements rule 3: any make() whose size comes
// from (*wire.Reader).Len — directly or through a variable that is never
// compared against anything — allocates attacker-controlled amounts of
// memory before validation.
func checkUnvalidatedLengths(p *Pass, info *types.Info, fd *ast.FuncDecl) {
	isReaderLen := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		return ok && isMethodOn(calleeFunc(info, call), wirePkgPath, "Reader", "Len")
	}

	// Variables assigned from r.Len().
	lenVars := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || !isReaderLen(as.Rhs[0]) {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					lenVars[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					lenVars[obj] = true
				}
			}
		}
		return true
	})

	// A comparison anywhere in the function counts as validation: the
	// idiomatic guard is `if n > bound { ... }` or a loop condition.
	validated := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for obj := range lenVars {
			if usesObject(info, be, obj) {
				validated[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltinCall(info, call, "make") || len(call.Args) < 2 {
			return true
		}
		size := ast.Unparen(call.Args[1])
		if isReaderLen(size) {
			p.Reportf(call.Pos(), "make() sized directly by (*wire.Reader).Len; validate the decoded length against the remaining input first")
			return true
		}
		if id, ok := size.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && lenVars[obj] && !validated[obj] {
				p.Reportf(call.Pos(), "make() sized by an unvalidated (*wire.Reader).Len result %q; compare it against the remaining input first", id.Name)
			}
		}
		return true
	})
}
