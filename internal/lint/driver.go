package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a lint directive. The vocabulary:
//
//	//unizklint:allow <analyzer> <reason>    suppress a finding (reason required)
//	//unizklint:allow <analyzer>(<reason>)   same, paren form
//	//unizklint:guardedby <mutex>            struct field: guarded by sibling mutex
//	//unizklint:hotpath                      func: allocation-free hot kernel
//	//unizklint:holds <path> [<path> ...]    func: caller-held lock precondition
//
// Allow directives must sit on the flagged line or the line directly
// above.
const directivePrefix = "unizklint:"

// A directive is one parsed //unizklint: comment.
type directive struct {
	analyzer string
	file     string
	line     int
	// malformed is a description of why the directive is invalid; valid
	// directives leave it empty.
	malformed string
	diag      Diagnostic // position for malformed-directive reporting
}

// parseAllow splits the remainder of an allow directive into analyzer
// name and reason, accepting both the space form
// "allow fieldcanon some reason" and the paren form
// "allow fieldcanon(some reason)".
func parseAllow(rest string) (name, reason string) {
	rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "allow"))
	if i := strings.IndexByte(rest, '('); i >= 0 && strings.HasSuffix(rest, ")") {
		return strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+1 : len(rest)-1])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", ""
	}
	return fields[0], strings.Join(fields[1:], " ")
}

// parseDirectives extracts every //unizklint: comment from a file.
// Validation is strict by design: a suppression that names no analyzer,
// names an unknown analyzer, or gives no reason is a finding itself —
// silent, unexplained suppressions are how invariants rot. Annotation
// verbs (guardedby, hotpath, holds) are validated for shape here and
// interpreted by their analyzers (lockguard, hotalloc).
func parseDirectives(p *Pass0, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if rest, ok := strings.CutPrefix(text, "/*"); ok {
				text = strings.TrimSuffix(rest, "*/")
			} else {
				text = strings.TrimPrefix(text, "//")
			}
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			d := directive{file: pos.Filename, line: pos.Line}
			d.diag = Diagnostic{Analyzer: "directive", Pos: pos}
			rest := strings.TrimPrefix(text, directivePrefix)
			fields := strings.Fields(rest)
			verb := ""
			if len(fields) > 0 {
				verb = fields[0]
				// The paren form glues the analyzer name to the verb's
				// argument ("allow x(y)"), so split on '(' too.
				if i := strings.IndexByte(verb, '('); i >= 0 {
					verb = verb[:i]
				}
			}
			switch verb {
			case "allow":
				name, reason := parseAllow(rest)
				switch {
				case !KnownAnalyzer(name):
					d.malformed = fmt.Sprintf("allow directive names no registered analyzer (got %q)", name)
				case reason == "":
					d.malformed = fmt.Sprintf("allow directive for %q has an empty reason; every suppression must say why", name)
				default:
					d.analyzer = name
				}
			case "guardedby":
				if len(fields) != 2 {
					d.malformed = "guardedby directive needs exactly one sibling mutex field name"
				}
			case "hotpath":
				if len(fields) != 1 {
					d.malformed = "hotpath directive takes no arguments"
				}
			case "holds":
				if len(fields) < 2 {
					d.malformed = "holds directive needs at least one lock path (e.g. s.mu)"
				}
			default:
				d.malformed = fmt.Sprintf("unknown unizklint directive %q (recognized: allow, guardedby, hotpath, holds)", rest)
			}
			out = append(out, d)
		}
	}
	return out
}

// Pass0 is the directive-scanning context (a trimmed Pass; directives are
// a framework feature, not an analyzer).
type Pass0 struct{ Fset *token.FileSet }

// Run loads each package path, runs every analyzer over it, applies allow
// directives collected from all loaded sources (suppressions can sit next
// to a flagged line in a dependency package), validates directives in the
// analyzed packages, and returns the surviving diagnostics sorted by
// position.
func Run(l *Loader, paths []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var analyzed []*Package
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		analyzed = append(analyzed, p)
	}

	var raw []Diagnostic
	for _, pkg := range analyzed {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     l.Fset,
				Pkg:      pkg,
				Dep:      l.Loaded,
				diags:    &raw,
			}
			a.Run(pass)
		}
	}

	// Directive collection. Suppression consults every loaded file (a
	// cross-package analyzer may report into a dependency); validation
	// only covers the packages actually analyzed, so a run over a subtree
	// does not duplicate findings for its dependencies.
	analyzedSet := make(map[*Package]bool, len(analyzed))
	for _, p := range analyzed {
		analyzedSet[p] = true
	}
	type key struct {
		analyzer, file string
		line           int
	}
	allow := make(map[key]bool)
	var diags []Diagnostic
	p0 := &Pass0{Fset: l.Fset}
	for _, pkg := range l.AllLoaded() {
		for _, f := range pkg.Files {
			for _, d := range parseDirectives(p0, f) {
				if d.malformed != "" {
					if analyzedSet[pkg] {
						dd := d.diag
						dd.Message = d.malformed
						diags = append(diags, dd)
					}
					continue
				}
				if d.analyzer == "" {
					// A valid annotation verb (guardedby/hotpath/holds);
					// interpreted by its analyzer, not a suppression.
					continue
				}
				allow[key{d.analyzer, d.file, d.line}] = true
			}
		}
	}

	for _, d := range raw {
		if allow[key{d.Analyzer, d.Pos.Filename, d.Pos.Line}] ||
			allow[key{d.Analyzer, d.Pos.Filename, d.Pos.Line - 1}] {
			continue
		}
		diags = append(diags, d)
	}

	// Cross-package analyzers rediscover the same dependency finding from
	// several roots; dedup by identity.
	seen := make(map[string]bool)
	out := diags[:0]
	for _, d := range diags {
		id := d.String()
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
