package lint

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Expand resolves go-style package patterns ("./...", "./internal/fri")
// against the loader's module into import paths, in walk order. Like the
// go tool, it skips testdata, vendor, hidden, and underscore-prefixed
// directories.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(dir string) {
		path := l.importPathFor(dir)
		if path != "" && !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
			}
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// importPathFor maps a directory inside the module to its import path,
// or "" if the directory is outside the module.
func (l *Loader) importPathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	modAbs, err := filepath.Abs(l.ModuleDir)
	if err != nil {
		return ""
	}
	if abs == modAbs {
		return l.ModulePath
	}
	rel, err := filepath.Rel(modAbs, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return ""
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// ensure os is referenced even if future refactors drop other uses.
var _ = os.ReadDir
