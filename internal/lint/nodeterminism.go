package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// NoDeterminism guards Fiat–Shamir reproducibility. The prover and
// verifier must drive byte-identical Challenger transcripts; any
// nondeterminism on a transcript-adjacent code path — wall-clock reads,
// math/rand, or Go's randomized map iteration order — either breaks
// proof reproducibility outright or is a latent bug waiting for a
// refactor to move it onto the transcript.
//
// Scope: non-main packages that import unizk/internal/poseidon directly
// (plus poseidon itself) — exactly the packages that can reach the
// Challenger. Within scope:
//
//   - importing math/rand or math/rand/v2 is flagged;
//   - calling time.Now is flagged;
//   - a range over a map whose body feeds the Challenger
//     (Observe*/Sample*) is flagged everywhere, scope or not.
//
// Test files are never loaded by the lint driver, so deterministic
// seeded randomness in tests is unaffected.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbid math/rand, time.Now, and map-iteration-fed Challenger " +
		"observations in transcript-adjacent packages",
	Run: runNoDeterminism,
}

func runNoDeterminism(p *Pass) {
	inScope := p.Pkg.Path == poseidonPkgPath
	if !inScope && p.Pkg.Types.Name() != "main" {
		for _, imp := range p.Pkg.Types.Imports() {
			if imp.Path() == poseidonPkgPath {
				inScope = true
				break
			}
		}
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		if inScope {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "math/rand in a transcript-adjacent package; any randomness here risks breaking Fiat–Shamir reproducibility (move it to a test or a non-transcript package)")
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if inScope && isPkgFunc(calleeFunc(info, n), "time", "Now") {
					p.Reportf(n.Pos(), "time.Now in a transcript-adjacent package; wall-clock values must never influence the transcript")
				}
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if feedsChallenger(info, n.Body) {
					p.Reportf(n.Pos(), "map iteration order is nondeterministic and this loop feeds the Fiat–Shamir Challenger; iterate a sorted key slice instead")
				}
			}
			return true
		})
	}
}

// feedsChallenger reports whether the body contains a direct
// Observe*/Sample* call on poseidon.Challenger.
func feedsChallenger(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Observe") && !strings.HasPrefix(fn.Name(), "Sample") {
			return true
		}
		named := recvNamed(fn)
		if named != nil && named.Obj().Name() == "Challenger" &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == poseidonPkgPath {
			found = true
		}
		return !found
	})
	return found
}
