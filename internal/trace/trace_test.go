package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNilRecorderRuns(t *testing.T) {
	var r *Recorder
	ran := false
	r.NTT(8, 1, false, false, false, func() { ran = true })
	if !ran {
		t.Fatal("nil recorder must still run the kernel")
	}
	if r.Nodes() != nil {
		t.Fatal("nil recorder must return nil nodes")
	}
	if r.TotalCPUTime() != 0 {
		t.Fatal("nil recorder must report zero time")
	}
}

func TestRecordsNodesAndTime(t *testing.T) {
	r := New()
	r.NTT(1024, 3, true, true, false, func() { time.Sleep(time.Millisecond) })
	r.Merkle(512, 8, func() {})
	r.Hashes(10, func() {})
	r.VecOp(2048, 2, 1, func() {})
	r.PartialProducts(4096, func() {})
	r.TransposeOp(100, func() {})

	nodes := r.Nodes()
	if len(nodes) != 6 {
		t.Fatalf("got %d nodes, want 6", len(nodes))
	}
	if nodes[0].Kind != NTT || nodes[0].Size != 1024 || nodes[0].Batch != 3 ||
		!nodes[0].Inverse || !nodes[0].Coset || nodes[0].BitRev {
		t.Fatalf("NTT node fields wrong: %+v", nodes[0])
	}
	if nodes[1].Kind != MerkleTree || nodes[1].Size != 512 || nodes[1].Batch != 8 {
		t.Fatalf("Merkle node fields wrong: %+v", nodes[1])
	}
	times := r.CPUTime()
	if times[NTT] < time.Millisecond {
		t.Fatalf("NTT time %v, want >= 1ms", times[NTT])
	}
	if r.TotalCPUTime() < times[NTT] {
		t.Fatal("total < component")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.VecOp(10, 1, 1, func() {})
		}()
	}
	wg.Wait()
	if got := len(r.Nodes()); got != 50 {
		t.Fatalf("got %d nodes, want 50", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Hashes(1, func() {})
	b.Merkle(4, 1, func() {})
	b.Hashes(2, func() {})
	a.Merge(b)
	if got := len(a.Nodes()); got != 3 {
		t.Fatalf("merged nodes = %d, want 3", got)
	}
	a.Merge(nil) // must not panic
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		NTT: "NTT", Hash: "OtherHash", MerkleTree: "MerkleTree",
		VecOp: "VecOp", PartialProd: "PartialProd", Transpose: "Transpose",
		Kind(99): "Unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}
