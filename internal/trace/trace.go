// Package trace records the kernel computation graph of a proof generation
// run. It is the software analogue of UniZK's compiler frontend (paper
// §5.5): "converting functions in standard ZKP libraries into
// specially-defined computation graphs". The provers in internal/plonk,
// internal/stark and internal/fri execute every kernel through a Recorder,
// which (a) appends a Node describing the kernel — later consumed by the
// UniZK simulator backend — and (b) accumulates per-kernel-class CPU wall
// time, which is what Table 1 and Figure 9 report for the CPU baseline.
//
// A nil *Recorder is valid everywhere and records nothing, so the provers
// can run un-instrumented at full speed.
package trace

import (
	"sync"
	"time"
)

// Kind classifies a kernel node, following the paper's breakdown
// categories (Table 1, Figure 8).
type Kind int

const (
	// NTT is a (possibly batched, coset, inverse) number theoretic
	// transform.
	NTT Kind = iota
	// Hash is standalone Poseidon permutation work: Fiat–Shamir
	// transforms and proof-of-work grinding ("Other Hash" in Table 1).
	Hash
	// MerkleTree is Merkle tree construction (leaf hashing + internal
	// levels).
	MerkleTree
	// VecOp is element-wise polynomial computation.
	VecOp
	// PartialProd is the quotient-chunk partial product of §5.4.
	PartialProd
	// Transpose is a data layout transformation.
	Transpose

	// NumKinds is the number of kernel kinds.
	NumKinds
)

// String returns the report label for the kind.
func (k Kind) String() string {
	switch k {
	case NTT:
		return "NTT"
	case Hash:
		return "OtherHash"
	case MerkleTree:
		return "MerkleTree"
	case VecOp:
		return "VecOp"
	case PartialProd:
		return "PartialProd"
	case Transpose:
		return "Transpose"
	default:
		return "Unknown"
	}
}

// Node is one kernel in the computation graph. The meaning of the generic
// fields depends on Kind:
//
//	NTT:         Size = points per transform, Batch = #polynomials,
//	             Inverse/Coset/BitRev describe the variant.
//	Hash:        Size = number of Poseidon permutations.
//	MerkleTree:  Size = number of leaves, Batch = leaf width in elements.
//	VecOp:       Size = vector length, Batch = #operand vectors read,
//	             Ops = modular mul/add operations per output element.
//	PartialProd: Size = length of the quotient vector q (§5.4).
//	Transpose:   Size = total elements moved.
type Node struct {
	Kind    Kind
	Size    int
	Batch   int
	Ops     int
	Inverse bool
	Coset   bool
	BitRev  bool
}

// Recorder accumulates kernel nodes and CPU time per kind. Methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Recorder struct {
	mu      sync.Mutex
	nodes   []Node
	cpuTime [NumKinds]time.Duration
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Record appends n and runs fn, attributing its wall time to n.Kind.
func (r *Recorder) Record(n Node, fn func()) {
	if r == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	elapsed := time.Since(start)
	r.mu.Lock()
	r.nodes = append(r.nodes, n)
	r.cpuTime[n.Kind] += elapsed
	r.mu.Unlock()
}

// RecordTimed appends n with a pre-measured duration, for kernels whose
// node parameters are only known after execution (e.g. proof-of-work
// grinding, whose permutation count is the number of attempts).
func (r *Recorder) RecordTimed(n Node, elapsed time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.nodes = append(r.nodes, n)
	r.cpuTime[n.Kind] += elapsed
	r.mu.Unlock()
}

// NTT records a batched transform of the given size.
func (r *Recorder) NTT(size, batch int, inverse, coset, bitRev bool, fn func()) {
	r.Record(Node{Kind: NTT, Size: size, Batch: batch,
		Inverse: inverse, Coset: coset, BitRev: bitRev}, fn)
}

// Merkle records a Merkle tree build.
func (r *Recorder) Merkle(leaves, leafWidth int, fn func()) {
	r.Record(Node{Kind: MerkleTree, Size: leaves, Batch: leafWidth}, fn)
}

// Hashes records count standalone Poseidon permutations.
func (r *Recorder) Hashes(count int, fn func()) {
	r.Record(Node{Kind: Hash, Size: count}, fn)
}

// VecOp records an element-wise kernel over vectors of the given length,
// reading operands input vectors and performing ops modular operations per
// output element.
func (r *Recorder) VecOp(length, operands, ops int, fn func()) {
	r.Record(Node{Kind: VecOp, Size: length, Batch: operands, Ops: ops}, fn)
}

// PartialProducts records the §5.4 quotient-chunk partial product kernel.
func (r *Recorder) PartialProducts(length int, fn func()) {
	r.Record(Node{Kind: PartialProd, Size: length}, fn)
}

// TransposeOp records a layout transformation of size elements.
func (r *Recorder) TransposeOp(size int, fn func()) {
	r.Record(Node{Kind: Transpose, Size: size}, fn)
}

// Nodes returns a copy of the recorded graph.
func (r *Recorder) Nodes() []Node {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Node(nil), r.nodes...)
}

// CPUTime returns the accumulated wall time per kind.
func (r *Recorder) CPUTime() [NumKinds]time.Duration {
	if r == nil {
		return [NumKinds]time.Duration{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cpuTime
}

// TotalCPUTime returns the sum over kinds.
func (r *Recorder) TotalCPUTime() time.Duration {
	var total time.Duration
	for _, d := range r.CPUTime() {
		total += d
	}
	return total
}

// Merge appends another recorder's nodes and times into r (used to combine
// the Starky base stage and the Plonky2 recursive stage for Table 5).
func (r *Recorder) Merge(other *Recorder) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	nodes := append([]Node(nil), other.nodes...)
	times := other.cpuTime
	other.mu.Unlock()
	r.mu.Lock()
	r.nodes = append(r.nodes, nodes...)
	for k := range times {
		r.cpuTime[k] += times[k]
	}
	r.mu.Unlock()
}
