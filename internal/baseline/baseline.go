// Package baseline provides the comparison points of the paper's
// evaluation: an analytic GPU model for the Plonky2 CUDA implementation
// (Table 3), and the Groth16/PipeZK reference numbers and cost model for
// Table 6. The CPU baseline is the measured Go implementation itself
// (recorded per-kernel by internal/trace); see DESIGN.md §2.3–2.5 for the
// substitutions.
package baseline

import (
	"time"

	"unizk/internal/trace"
)

// GPU model (paper §6: NVIDIA A100, 80 GB, 2 TB/s; the CUDA code
// "primarily focuses on accelerating NTT, Merkle tree, and elementwise
// polynomial computations. The other kernels are still executed on the
// host CPU", with back-and-forth PCIe transfers).
//
// Per-kernel speedups over the CPU are bounded by the A100/CPU bandwidth
// ratio (2 TB/s vs 200 GB/s = 10×) and discounted for the known GPU
// inefficiencies the paper names: irregular NTT memory access and 64-bit
// modular arithmetic in Poseidon.
const (
	gpuNTTSpeedup   = 5.0 // irregular access patterns cap NTT gains (§7.1)
	gpuMerkleSpeed  = 3.5 // 64-bit modmul Poseidon is ALU-bound on GPUs
	gpuVecOpSpeedup = 8.0 // streaming element-wise work is bandwidth-bound
	pcieBytesPerSec = 16e9
)

// GPUTime estimates the end-to-end GPU proving time from the measured CPU
// per-kernel times and the kernel graph (for transfer sizes).
func GPUTime(cpuTimes [trace.NumKinds]time.Duration, nodes []trace.Node) time.Duration {
	scale := func(d time.Duration, f float64) time.Duration {
		return time.Duration(float64(d) / f)
	}
	total := scale(cpuTimes[trace.NTT], gpuNTTSpeedup) +
		scale(cpuTimes[trace.MerkleTree], gpuMerkleSpeed) +
		scale(cpuTimes[trace.VecOp], gpuVecOpSpeedup) +
		cpuTimes[trace.PartialProd] + // host CPU
		cpuTimes[trace.Hash] + // host CPU (Fiat–Shamir, PoW)
		cpuTimes[trace.Transpose]

	// Every CPU-resident kernel forces its operands across PCIe and back.
	var transferBytes int64
	for _, n := range nodes {
		switch n.Kind {
		case trace.PartialProd:
			transferBytes += 2 * int64(n.Size) * 8
		case trace.Transpose:
			transferBytes += int64(n.Size) * 8
		}
	}
	total += time.Duration(float64(transferBytes) / pcieBytesPerSec * float64(time.Second))
	return total
}

// Reference numbers for Table 6, from the PipeZK paper as cited by the
// UniZK evaluation (§7.5): single-block proving times and PipeZK's
// amortized SHA-256 throughput.
type PipeZKReference struct {
	App             string
	Groth16CPU      time.Duration // Groth16 proving on the CPU
	PipeZKASIC      time.Duration // PipeZK end-to-end (ASIC + host CPU)
	PipeZKBlocksSec float64       // amortized blocks/s (SHA-256 only)
}

// PipeZKReferences returns the published comparison points.
func PipeZKReferences() []PipeZKReference {
	return []PipeZKReference{
		{App: "SHA-256", Groth16CPU: 1500 * time.Millisecond,
			PipeZKASIC: 102 * time.Millisecond, PipeZKBlocksSec: 10},
		{App: "AES-128", Groth16CPU: 1100 * time.Millisecond,
			PipeZKASIC: 97 * time.Millisecond},
	}
}

// Groth16Model sanity-checks the cited CPU numbers from first principles:
// proving is dominated by multi-scalar multiplications over the BN254
// curve — roughly 3n G1 points and n G2 points (≈3× G1 cost) for n
// constraints — plus a handful of size-n NTTs.
func Groth16Model(constraints int, threads int) time.Duration {
	const g1PointNs = 5000.0 // amortized Pippenger cost per G1 point
	n := float64(constraints)
	work := 3*n*g1PointNs + n*3*g1PointNs // G1 MSMs + G2 MSM
	work += 7 * n * 50                    // NTTs (256-bit field ops)
	if threads < 1 {
		threads = 1
	}
	return time.Duration(work / float64(threads))
}

// Groth16Constraints returns representative R1CS sizes for the Table 6
// applications (one data block each).
func Groth16Constraints(app string) int {
	switch app {
	case "SHA-256":
		return 27000
	case "AES-128":
		return 20000
	default:
		return 0
	}
}
