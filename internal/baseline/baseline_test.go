package baseline

import (
	"testing"
	"time"

	"unizk/internal/trace"
)

func TestGPUTimeFasterThanCPUButBounded(t *testing.T) {
	// A Table-1-shaped breakdown: Merkle ~60%, NTT ~20%, poly ~15%.
	var times [trace.NumKinds]time.Duration
	times[trace.MerkleTree] = 600 * time.Millisecond
	times[trace.NTT] = 200 * time.Millisecond
	times[trace.VecOp] = 130 * time.Millisecond
	times[trace.PartialProd] = 20 * time.Millisecond
	times[trace.Hash] = 10 * time.Millisecond
	times[trace.Transpose] = 40 * time.Millisecond
	var cpu time.Duration
	for _, d := range times {
		cpu += d
	}

	gpu := GPUTime(times, nil)
	speedup := float64(cpu) / float64(gpu)
	// The paper's GPU speedups are 1.2–4.6×; the model should land in a
	// similar band for a representative mix.
	if speedup < 1.2 || speedup > 6 {
		t.Fatalf("GPU speedup %.2f outside plausible band", speedup)
	}
}

func TestGPUTransfersAddTime(t *testing.T) {
	var times [trace.NumKinds]time.Duration
	times[trace.NTT] = 100 * time.Millisecond
	without := GPUTime(times, nil)
	with := GPUTime(times, []trace.Node{
		{Kind: trace.PartialProd, Size: 1 << 26},
	})
	if with <= without {
		t.Fatal("PCIe transfers should add time")
	}
}

func TestPipeZKReferences(t *testing.T) {
	refs := PipeZKReferences()
	if len(refs) != 2 {
		t.Fatalf("got %d references, want 2", len(refs))
	}
	if refs[0].App != "SHA-256" || refs[0].PipeZKBlocksSec != 10 {
		t.Fatal("SHA-256 reference wrong")
	}
}

func TestGroth16ModelPlausible(t *testing.T) {
	// The model should land within ~2× of the cited single-block numbers.
	for _, ref := range PipeZKReferences() {
		n := Groth16Constraints(ref.App)
		if n == 0 {
			t.Fatalf("no constraint count for %s", ref.App)
		}
		est := Groth16Model(n, 1)
		ratio := float64(est) / float64(ref.Groth16CPU)
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("%s: model %v vs cited %v (ratio %.2f)",
				ref.App, est, ref.Groth16CPU, ratio)
		}
	}
	if Groth16Constraints("nope") != 0 {
		t.Error("unknown app should have 0 constraints")
	}
	if Groth16Model(1000, 0) <= 0 {
		t.Error("thread floor broken")
	}
}
