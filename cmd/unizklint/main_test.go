package main

import (
	"encoding/json"
	"os"
	"testing"
)

// capture runs fn with os.Stdout redirected to a pipe and returns what
// it wrote.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan string, 1)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	fn()
	w.Close()
	out := <-done
	r.Close()
	return out
}

func TestRunUsageErrors(t *testing.T) {
	if got := run(nil); got != 2 {
		t.Errorf("no args: exit %d, want 2", got)
	}
	if got := run([]string{"-only", "nosuchanalyzer", "./..."}); got != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", got)
	}
}

func TestRunList(t *testing.T) {
	out := capture(t, func() {
		if got := run([]string{"-list"}); got != 0 {
			t.Errorf("-list: exit %d, want 0", got)
		}
	})
	for _, name := range []string{"fieldcanon", "wirecheck", "lockguard", "goroutinelife", "atomicmix", "hotalloc"} {
		if !containsLine(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestRunJSONClean checks that -json emits a well-formed (empty) array
// on a clean package, so CI consumers can rely on the shape.
func TestRunJSONClean(t *testing.T) {
	out := capture(t, func() {
		if got := run([]string{"-json", "./internal/field"}); got != 0 {
			t.Errorf("-json clean package: exit %d, want 0", got)
		}
	})
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
	}
	if len(findings) != 0 {
		t.Errorf("clean package produced findings: %+v", findings)
	}
}

func containsLine(out, prefix string) bool {
	for len(out) > 0 {
		line := out
		if i := indexByte(out, '\n'); i >= 0 {
			line, out = out[:i], out[i+1:]
		} else {
			out = ""
		}
		if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
