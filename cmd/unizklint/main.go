// Command unizklint runs the unizk analyzer suite (internal/lint) over
// module packages and prints findings in file:line:col: analyzer: message
// form. It exits 0 when the tree is clean, 1 when any finding survives
// suppression, and 2 on usage or load errors.
//
// Usage:
//
//	go run ./cmd/unizklint ./...
//	go run ./cmd/unizklint -list
//	go run ./cmd/unizklint -only fieldcanon,wirecheck ./internal/wire
//	go run ./cmd/unizklint -json ./...
//
// With -json, findings are emitted as a JSON array of
// {analyzer, file, line, col, message} objects on stdout (an empty
// array when clean) for editor and CI integration; the GitHub Actions
// problem matcher in .github/unizklint-problem-matcher.json consumes
// the default text form instead.
//
// Findings are suppressed by an //unizklint:allow <analyzer> <reason>
// directive (equivalently //unizklint:allow <analyzer>(<reason>)) on
// the flagged line or the line directly above; a malformed directive is
// itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"unizk/internal/lint"
)

// jsonFinding is the machine-readable form of one lint.Diagnostic.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("unizklint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: unizklint [-list] [-json] [-only a,b] packages...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if !lint.KnownAnalyzer(name) {
				fmt.Fprintf(os.Stderr, "unizklint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			keep[name] = true
		}
		var subset []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				subset = append(subset, a)
			}
		}
		analyzers = subset
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unizklint: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unizklint: %v\n", err)
		return 2
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unizklint: %v\n", err)
		return 2
	}
	paths, err := l.Expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unizklint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(l, paths, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unizklint: %v\n", err)
		return 2
	}
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "unizklint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
