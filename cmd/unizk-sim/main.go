// Command unizk-sim runs the UniZK cycle simulator on one workload and
// prints per-kernel cycles, utilization, and the configuration knobs —
// the equivalent of the artifact's per-application simulation runs, with
// -r/-t/-e flags mirroring the original's command line (§A.7).
//
// Usage:
//
//	unizk-sim -app Fibonacci [-rows 12] [-r 8] [-t 32] [-e -1]
//
// -r is the scratchpad capacity in MB, -t the number of VSAs, and -e
// restricts simulation to one kernel class (0 NTT, 1 hash, 2 poly;
// -1 = entire proof generation).
package main

import (
	"flag"
	"fmt"
	"os"

	"unizk/internal/core"
	"unizk/internal/fri"
	"unizk/internal/trace"
	"unizk/internal/workloads"
)

func main() {
	app := flag.String("app", "Fibonacci", "workload (Table 3 name)")
	rows := flag.Int("rows", 12, "log2 of circuit rows")
	scratchMB := flag.Int("r", 8, "scratchpad capacity in MB")
	vsas := flag.Int("t", 32, "number of VSAs")
	kernel := flag.Int("e", -1, "kernel class filter: 0 NTT, 1 hash, 2 poly, -1 all")
	schedules := flag.Bool("schedule", false, "print the compiler backend's per-kernel schedules (§5.5)")
	flag.Parse()

	w, err := workloads.ByName(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unizk-sim:", err)
		os.Exit(1)
	}
	cfg := fri.PlonkyConfig()
	cfg.ProofOfWorkBits = 10
	circuit, wit, _, err := w.Build(*rows, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unizk-sim:", err)
		os.Exit(1)
	}
	rec := trace.New()
	if _, err := circuit.Prove(wit, rec); err != nil {
		fmt.Fprintln(os.Stderr, "unizk-sim:", err)
		os.Exit(1)
	}

	nodes := rec.Nodes()
	if *kernel >= 0 {
		want := map[int][]trace.Kind{
			0: {trace.NTT},
			1: {trace.Hash, trace.MerkleTree},
			2: {trace.VecOp, trace.PartialProd},
		}[*kernel]
		var filtered []trace.Node
		for _, n := range nodes {
			for _, k := range want {
				if n.Kind == k {
					filtered = append(filtered, n)
				}
			}
		}
		nodes = filtered
	}

	chip := core.DefaultConfig().
		WithVSAs(*vsas).
		WithScratchpad(int64(*scratchMB) << 20)
	res := core.Simulate(nodes, chip)

	fmt.Printf("workload: %s (2^%d rows), %d kernel nodes\n", *app, *rows, len(nodes))
	fmt.Printf("config: %d VSAs, %d MB scratchpad, %.0f GB/s peak\n",
		chip.NumVSAs, chip.ScratchpadBytes>>20,
		chip.DRAM.PeakBytesPerCycle()*chip.FreqGHz)
	fmt.Printf("total cycles: %d (%.3f ms at %.1f GHz)\n",
		res.TotalCycles, res.Seconds()*1e3, chip.FreqGHz)
	for c := core.Class(0); c < core.NumClasses; c++ {
		fmt.Printf("  %-5s %12d cycles  mem %5.1f%%  vsa %5.1f%%  (%d nodes)\n",
			c, res.Cycles[c],
			100*res.MemUtilization(c), 100*res.VSAUtilization(c),
			res.Nodes[c])
	}

	if *schedules {
		fmt.Println("\nper-kernel schedules:")
		for i, n := range nodes {
			s := core.BuildSchedule(n, chip)
			fmt.Printf("  [%3d] %-11s size=%-8d batch=%-4d tiles=%-3d compute=%-9d bytes=%-10d %s\n",
				i, n.Kind, n.Size, n.Batch, len(s.Tiles),
				s.ComputeCycles(), s.MemBytes(), s.Region)
		}
	}
}
