// Command unizk-cluster runs the fault-tolerant proving cluster
// coordinator: the same HTTP job API as unizk-server, fronting N
// prover nodes with least-loaded placement, health-probed failover,
// and a replicated idempotency index. See DESIGN.md §12.
//
// Point it at existing nodes:
//
//	unizk-cluster -addr 127.0.0.1:8500 \
//	    -nodes http://127.0.0.1:8427,http://127.0.0.1:8428
//
// or let it spawn a local fleet in-process (each node is a full
// internal/server instance on its own ephemeral port — handy for
// development and demos, not a substitute for separate processes):
//
//	unizk-cluster -addr 127.0.0.1:8500 -spawn 3
//
// On SIGINT/SIGTERM the coordinator drains: new submissions get 503,
// in-flight cluster jobs run to completion (bounded by -drain), then
// any self-spawned nodes drain too.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"unizk/internal/cluster"
	"unizk/internal/journal"
	"unizk/internal/server"
	"unizk/internal/tenant"
)

// tenantFlags collects repeatable -tenant specs
// (name:key[:class=N][:rate=R][:burst=B][:inflight=M]).
type tenantFlags []tenant.Config

func (f *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*f)) }

func (f *tenantFlags) Set(spec string) error {
	cfg, err := tenant.ParseSpec(spec)
	if err != nil {
		return err
	}
	*f = append(*f, cfg)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8500", "coordinator listen address (use :0 for an ephemeral port)")
	nodes := flag.String("nodes", "", "comma-separated prover node base URLs")
	spawn := flag.Int("spawn", 0, "spawn N in-process prover nodes on ephemeral ports (instead of -nodes)")
	probe := flag.Duration("probe", 250*time.Millisecond, "health/load probe interval per node")
	stale := flag.Duration("stale", 3*time.Second, "failed-probe duration after which a node is ejected")
	drain := flag.Duration("drain", 60*time.Second, "how long shutdown waits for in-flight cluster jobs")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline, measured from admission")
	portfile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	cacheEntries := flag.Int("cache", 0, "coordinator proof cache entries (0 = cache off)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cached proof lifetime (0 = proofcache default)")
	cacheVerify := flag.Bool("cache-verify", false, "verify each proof before caching it (verify-on-insert)")
	journalDir := flag.String("journal", "", "write-ahead journal directory; admitted jobs survive coordinator crashes (empty = journaling off)")
	fsyncPolicy := flag.String("fsync", "batch", "journal fsync policy: always, batch, or off")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal records between snapshot compactions (0 = journal default, negative = never)")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "tenant spec name:key[:class=N][:rate=R][:burst=B][:inflight=M] (repeatable)")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	fsync, err := journal.ParsePolicy(*fsyncPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unizk-cluster:", err)
		os.Exit(1)
	}
	opts := servingOptions{
		cacheEntries:  *cacheEntries,
		cacheTTL:      *cacheTTL,
		cacheVerify:   *cacheVerify,
		journalDir:    *journalDir,
		fsync:         fsync,
		snapshotEvery: *snapshotEvery,
	}
	if len(tenants) > 0 {
		reg, err := tenant.NewRegistry(tenants...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unizk-cluster:", err)
			os.Exit(1)
		}
		opts.tenants = reg
	}
	if err := run(*addr, urls, *spawn, *probe, *stale, *drain, *jobTimeout, *portfile, opts); err != nil {
		fmt.Fprintln(os.Stderr, "unizk-cluster:", err)
		os.Exit(1)
	}
}

// servingOptions carries the serving-tier knobs (coordinator cache and
// tenant registry) from flags into run.
type servingOptions struct {
	cacheEntries  int
	cacheTTL      time.Duration
	cacheVerify   bool
	tenants       *tenant.Registry
	journalDir    string
	fsync         journal.Policy
	snapshotEvery int
}

// localNode is one self-spawned in-process prover node.
type localNode struct {
	srv *server.Server
	hs  *http.Server
	url string
}

// spawnLocal starts n prover nodes on ephemeral loopback ports.
func spawnLocal(n int) ([]*localNode, []string, error) {
	var locals []*localNode
	var urls []string
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range locals {
				l.hs.Close()
			}
			return nil, nil, err
		}
		s := server.New(server.Config{})
		hs := &http.Server{Handler: s.Handler()}
		//unizklint:allow goroutinelife(embedded node server; exits when main calls l.hs.Shutdown during drain, or hs.Close on spawn failure)
		go func() { _ = hs.Serve(ln) }()
		u := "http://" + ln.Addr().String()
		locals = append(locals, &localNode{srv: s, hs: hs, url: u})
		urls = append(urls, u)
	}
	return locals, urls, nil
}

func run(addr string, urls []string, spawn int, probe, stale, drain, jobTimeout time.Duration, portfile string, opts servingOptions) error {
	if spawn > 0 && len(urls) > 0 {
		return errors.New("use -nodes or -spawn, not both")
	}
	var locals []*localNode
	if spawn > 0 {
		var err error
		locals, urls, err = spawnLocal(spawn)
		if err != nil {
			return err
		}
		fmt.Printf("unizk-cluster: spawned %d local nodes: %s\n", spawn, strings.Join(urls, " "))
	}
	if len(urls) == 0 {
		return errors.New("no prover nodes: pass -nodes or -spawn")
	}

	coord, err := cluster.New(cluster.Config{
		Nodes:          urls,
		ProbeInterval:  probe,
		StaleAfter:     stale,
		DefaultTimeout: jobTimeout,
		CacheEntries:   opts.cacheEntries,
		CacheTTL:       opts.cacheTTL,
		CacheVerify:    opts.cacheVerify,
		Tenants:        opts.tenants,
		JournalDir:     opts.journalDir,
		JournalFsync:   opts.fsync,
		SnapshotEvery:  opts.snapshotEvery,
	})
	if err != nil {
		return err
	}
	rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = coord.WaitReady(rctx)
	rcancel()
	if err != nil {
		fmt.Println("unizk-cluster: warning: no node answered a probe yet; serving anyway")
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if portfile != "" {
		if err := os.WriteFile(portfile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Printf("unizk-cluster listening on %s (nodes=%d probe=%v stale=%v)\n",
		bound, len(urls), probe, stale)

	hs := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	//unizklint:allow goroutinelife(exits when hs.Serve returns; Shutdown below unblocks it and main waits on serveErr)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		fmt.Printf("unizk-cluster: %v, draining (up to %v)\n", sig, drain)
	case err := <-serveErr:
		return err
	}

	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	forced := coord.Shutdown(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr
	for _, l := range locals {
		_ = l.srv.Shutdown(dctx)
		_ = l.hs.Shutdown(dctx)
	}
	if forced != nil {
		fmt.Println("unizk-cluster: drain deadline hit, in-flight jobs canceled")
	} else {
		fmt.Println("unizk-cluster: drained cleanly")
	}
	return nil
}
