// Command prove generates and verifies proofs from the command line: a
// Plonky2-style proof for a Table 3 workload, or a Starky base proof.
//
// Usage:
//
//	prove -protocol plonky2 -app "Image Crop" -rows 10
//	prove -protocol starky -app Fibonacci -rows 12 -timeout 30s
//
// Exit codes distinguish failure stages so scripts can react:
//
//	1  usage error (bad flags, unknown protocol or workload)
//	2  circuit/trace build failure
//	3  proving failure (including -timeout expiry)
//	4  verification failure
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"unizk/internal/fri"
	"unizk/internal/plonk"
	"unizk/internal/workloads"
)

// Exit codes, one per pipeline stage.
const (
	exitUsage  = 1
	exitBuild  = 2
	exitProve  = 3
	exitVerify = 4
)

func main() {
	protocol := flag.String("protocol", "plonky2", "plonky2 or starky")
	app := flag.String("app", "Fibonacci", "workload name")
	rows := flag.Int("rows", 10, "log2 of rows")
	timeout := flag.Duration("timeout", 0, "abort proving after this duration (0 = no limit)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch *protocol {
	case "plonky2":
		runPlonky2(ctx, *app, *rows)
	case "starky":
		runStarky(ctx, *app, *rows)
	default:
		fmt.Fprintf(os.Stderr, "prove: unknown protocol %q\n", *protocol)
		os.Exit(exitUsage)
	}
}

func runPlonky2(ctx context.Context, app string, rows int) {
	w, err := workloads.ByName(app)
	exitOn(err, exitUsage)
	cfg := fri.PlonkyConfig()
	circuit, wit, pub, err := w.Build(rows, cfg)
	exitOn(err, exitBuild)
	fmt.Printf("circuit: %s, %d rows (2^%d), %d public inputs\n",
		app, circuit.N, circuit.LogN, circuit.NumPublic)

	start := time.Now()
	proof, err := circuit.ProveContext(ctx, wit, nil)
	exitOn(err, exitProve)
	fmt.Printf("proved in %v\n", time.Since(start))

	start = time.Now()
	exitOn(plonk.Verify(circuit.VerificationKey(), pub, proof), exitVerify)
	fmt.Printf("verified in %v\n", time.Since(start))
}

func runStarky(ctx context.Context, app string, rows int) {
	w, err := workloads.StarkByName(app)
	exitOn(err, exitUsage)
	s, cols, err := w.Build(rows, fri.StarkyConfig())
	exitOn(err, exitBuild)
	fmt.Printf("trace: %s, %d rows (2^%d), width %d\n", app, s.N, s.LogN, s.Width)

	start := time.Now()
	proof, err := s.ProveContext(ctx, cols, nil)
	exitOn(err, exitProve)
	fmt.Printf("proved in %v\n", time.Since(start))

	start = time.Now()
	exitOn(s.Verify(proof), exitVerify)
	fmt.Printf("verified in %v\n", time.Since(start))
}

func exitOn(err error, code int) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "prove:", err)
		os.Exit(code)
	}
}
