// Command prove generates and verifies proofs from the command line: a
// Plonky2-style proof for a Table 3 workload, or a Starky base proof.
// Requests are built with internal/jobs, the same package the proving
// service uses, so local and remote proofs are bit-identical.
//
// Usage:
//
//	prove -protocol plonky2 -app "Image Crop" -rows 10
//	prove -protocol starky -app Fibonacci -rows 12 -timeout 30s
//	prove -remote http://127.0.0.1:8427 -app Fibonacci -rows 10
//	prove -remote http://127.0.0.1:8427 -app Fibonacci -rows 10 -retries 5
//
// -workers sets the shared prover pool size. It is independent of
// GOMAXPROCS: the Go scheduler still multiplexes the pool's goroutines
// onto GOMAXPROCS OS threads, so -workers above GOMAXPROCS adds no
// parallelism, only queueing. 0 keeps the default (NumCPU).
//
// Exit codes distinguish failure stages so scripts can react:
//
//	1  usage error (bad flags, unknown protocol or workload, refused request)
//	2  circuit/trace build failure
//	3  proving failure (including -timeout expiry and remote errors)
//	4  verification failure
package main

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"unizk/internal/jobs"
	"unizk/internal/parallel"
	"unizk/internal/serverclient"
)

// Exit codes, one per pipeline stage.
const (
	exitUsage  = 1
	exitBuild  = 2
	exitProve  = 3
	exitVerify = 4
)

func main() {
	protocol := flag.String("protocol", "plonky2", "plonky2 or starky")
	app := flag.String("app", "Fibonacci", "workload name")
	rows := flag.Int("rows", 10, "log2 of rows")
	timeout := flag.Duration("timeout", 0, "abort proving after this duration (0 = no limit)")
	remote := flag.String("remote", "", "prove on a unizk-server at this base URL instead of locally")
	workers := flag.Int("workers", 0, "prover pool size for local proving (0 = NumCPU; capped by GOMAXPROCS in practice)")
	retries := flag.Int("retries", 1, "total remote attempts for retryable failures (transport faults, 429/502/503)")
	idemKey := flag.String("idempotency-key", "", "idempotency key for remote submits; auto-generated when -retries > 1")
	apiKey := flag.String("api-key", "", "tenant API key for remote submits (sent as Authorization: Bearer)")
	stream := flag.Bool("stream", false, "submit async and stream job progress (SSE, falling back to long-poll/poll)")
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	kind, err := jobs.KindByName(*protocol)
	exitOn(err, exitUsage)
	req := &jobs.Request{Kind: kind, Workload: *app, LogRows: *rows, IdempotencyKey: *idemKey}

	if *remote != "" {
		runRemote(ctx, *remote, req, *timeout, *retries, *apiKey, *stream)
		return
	}
	runLocal(ctx, req)
}

// runLocal compiles and proves in-process, exactly as before the
// proving service existed.
func runLocal(ctx context.Context, req *jobs.Request) {
	j, err := jobs.Compile(req)
	exitOn(err, compileExitCode(err))
	fmt.Println(j.Describe())

	start := time.Now()
	res, err := j.Prove(ctx)
	exitOn(err, exitProve)
	fmt.Printf("proved in %v (%d proof bytes)\n", time.Since(start), len(res.Proof))

	start = time.Now()
	exitOn(j.Check(res), exitVerify)
	fmt.Printf("verified in %v\n", time.Since(start))
}

// runRemote submits the job on the service's synchronous endpoint and
// re-verifies the returned proof locally, so a lying server still
// exits 4. With -retries > 1 the client transparently retries retryable
// failures under an idempotency key, so a retried submit that raced a
// lost response attaches to the original job instead of proving twice.
func runRemote(ctx context.Context, baseURL string, req *jobs.Request, timeout time.Duration, retries int, apiKey string, stream bool) {
	c := serverclient.New(baseURL)
	c.APIKey = apiKey
	if retries > 1 {
		if req.IdempotencyKey == "" {
			key, err := randomIdempotencyKey()
			exitOn(err, exitProve)
			req.IdempotencyKey = key
		}
		c.Retry = &serverclient.RetryPolicy{MaxAttempts: retries}
		c.Breaker = &serverclient.Breaker{}
	}
	fmt.Printf("remote prove: %s %q 2^%d rows via %s\n", req.Kind, req.Workload, req.LogRows, baseURL)

	start := time.Now()
	var res *jobs.Result
	var err error
	if stream {
		// Async submit, then follow the job's progress events; each
		// status line is one SSE (or long-poll/poll fallback) update.
		var id string
		id, err = c.Submit(ctx, req, serverclient.Options{Timeout: timeout})
		exitOn(err, remoteExitCode(err))
		fmt.Printf("submitted %s\n", id)
		res, err = c.WaitStream(ctx, id, func(st *serverclient.JobStatus) {
			fmt.Println(st.String())
		})
	} else {
		res, err = c.Prove(ctx, req, serverclient.Options{Timeout: timeout})
	}
	exitOn(err, remoteExitCode(err))
	fmt.Printf("proved in %v (%d proof bytes)\n", time.Since(start), len(res.Proof))

	start = time.Now()
	exitOn(jobs.CheckResult(req, res), exitVerify)
	fmt.Printf("verified locally in %v\n", time.Since(start))
}

// compileExitCode distinguishes bad requests (usage) from circuit or
// trace construction failures (build).
func compileExitCode(err error) int {
	switch {
	case errors.Is(err, jobs.ErrBuild):
		return exitBuild
	default:
		return exitUsage
	}
}

// remoteExitCode maps the server's reply onto the local exit codes:
// 4xx request rejections (including idempotency-key conflicts) are
// usage errors, everything else (including transport failures and
// server-side prove errors) is a prove failure.
func remoteExitCode(err error) int {
	var apiErr *serverclient.APIError
	if errors.As(err, &apiErr) {
		switch apiErr.StatusCode {
		case 400, 404, 409, 422:
			return exitUsage
		}
	}
	return exitProve
}

// randomIdempotencyKey generates a fresh key for one CLI invocation's
// retries: unique across invocations (each run is a new logical
// request), stable within one (every retry replays the same request).
func randomIdempotencyKey() (string, error) {
	var buf [16]byte
	if _, err := cryptorand.Read(buf[:]); err != nil {
		return "", fmt.Errorf("generating idempotency key: %w", err)
	}
	return "prove-" + hex.EncodeToString(buf[:]), nil
}

func exitOn(err error, code int) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "prove:", err)
		os.Exit(code)
	}
}
