// Command prove generates and verifies proofs from the command line: a
// Plonky2-style proof for a Table 3 workload, or a Starky base proof.
//
// Usage:
//
//	prove -protocol plonky2 -app "Image Crop" -rows 10
//	prove -protocol starky -app Fibonacci -rows 12
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"unizk/internal/fri"
	"unizk/internal/plonk"
	"unizk/internal/workloads"
)

func main() {
	protocol := flag.String("protocol", "plonky2", "plonky2 or starky")
	app := flag.String("app", "Fibonacci", "workload name")
	rows := flag.Int("rows", 10, "log2 of rows")
	flag.Parse()

	switch *protocol {
	case "plonky2":
		runPlonky2(*app, *rows)
	case "starky":
		runStarky(*app, *rows)
	default:
		fmt.Fprintf(os.Stderr, "prove: unknown protocol %q\n", *protocol)
		os.Exit(1)
	}
}

func runPlonky2(app string, rows int) {
	w, err := workloads.ByName(app)
	exitOn(err)
	cfg := fri.PlonkyConfig()
	circuit, wit, pub, err := w.Build(rows, cfg)
	exitOn(err)
	fmt.Printf("circuit: %s, %d rows (2^%d), %d public inputs\n",
		app, circuit.N, circuit.LogN, circuit.NumPublic)

	start := time.Now()
	proof, err := circuit.Prove(wit, nil)
	exitOn(err)
	fmt.Printf("proved in %v\n", time.Since(start))

	start = time.Now()
	exitOn(plonk.Verify(circuit.VerificationKey(), pub, proof))
	fmt.Printf("verified in %v\n", time.Since(start))
}

func runStarky(app string, rows int) {
	w, err := workloads.StarkByName(app)
	exitOn(err)
	s, cols, err := w.Build(rows, fri.StarkyConfig())
	exitOn(err)
	fmt.Printf("trace: %s, %d rows (2^%d), width %d\n", app, s.N, s.LogN, s.Width)

	start := time.Now()
	proof, err := s.Prove(cols, nil)
	exitOn(err)
	fmt.Printf("proved in %v\n", time.Since(start))

	start = time.Now()
	exitOn(s.Verify(proof))
	fmt.Printf("verified in %v\n", time.Since(start))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "prove:", err)
		os.Exit(1)
	}
}
