// Command unizk-server runs the proving service: an HTTP API that
// queues Plonky2/Starky proving jobs behind a bounded queue, proves
// them on the shared worker pool, and serves results. See DESIGN.md
// §10 for the architecture and internal/server for the API surface.
//
// Usage:
//
//	unizk-server -addr 127.0.0.1:8427 -queue 64 -inflight 2
//
// -workers sets the shared prover pool size. It is independent of
// GOMAXPROCS: the Go scheduler multiplexes pool goroutines onto
// GOMAXPROCS OS threads, so values above GOMAXPROCS add queueing, not
// parallelism. Total prover concurrency is roughly inflight × workers
// worker-slots contending for GOMAXPROCS threads.
//
// On SIGINT/SIGTERM the server drains: new submissions get 503,
// queued jobs are rejected as retryable, in-flight jobs get -drain to
// finish before being force-canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"unizk/internal/journal"
	"unizk/internal/parallel"
	"unizk/internal/server"
	"unizk/internal/tenant"
)

// tenantFlags collects repeatable -tenant specs
// (name:key[:class=N][:rate=R][:burst=B][:inflight=M]).
type tenantFlags []tenant.Config

func (f *tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(*f)) }

func (f *tenantFlags) Set(spec string) error {
	cfg, err := tenant.ParseSpec(spec)
	if err != nil {
		return err
	}
	*f = append(*f, cfg)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8427", "listen address (use :0 for an ephemeral port)")
	queueCap := flag.Int("queue", 64, "queued-job capacity before submissions get 429")
	inflight := flag.Int("inflight", 2, "jobs proving concurrently")
	workers := flag.Int("workers", 0, "prover pool size shared by all in-flight jobs (0 = NumCPU)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "default per-job deadline, measured from admission")
	drain := flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight jobs before canceling them")
	idemTTL := flag.Duration("idem-ttl", 10*time.Minute, "how long a submitted idempotency key deduplicates retries")
	idemKeys := flag.Int("idem-keys", 4096, "max idempotency keys tracked before the oldest are evicted")
	portfile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts)")
	cacheEntries := flag.Int("cache", 0, "content-addressed proof cache entries (0 = cache off)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cached proof lifetime (0 = proofcache default)")
	cacheVerify := flag.Bool("cache-verify", false, "verify each proof before caching it (verify-on-insert)")
	registry := flag.Int("registry", 0, "precompiled-circuit registry size: hot circuits compile once (0 = off)")
	journalDir := flag.String("journal", "", "write-ahead journal directory; admitted jobs survive server crashes (empty = journaling off)")
	fsyncPolicy := flag.String("fsync", "batch", "journal fsync policy: always, batch, or off")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal records between snapshot compactions (0 = journal default, negative = never)")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "tenant spec name:key[:class=N][:rate=R][:burst=B][:inflight=M] (repeatable)")
	flag.Parse()

	fsync, err := journal.ParsePolicy(*fsyncPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unizk-server:", err)
		os.Exit(1)
	}
	cfg := server.Config{
		QueueCap:           *queueCap,
		MaxInFlight:        *inflight,
		DefaultTimeout:     *jobTimeout,
		IdempotencyTTL:     *idemTTL,
		MaxIdempotencyKeys: *idemKeys,
		CacheEntries:       *cacheEntries,
		CacheTTL:           *cacheTTL,
		CacheVerify:        *cacheVerify,
		RegistryCircuits:   *registry,
		JournalDir:         *journalDir,
		JournalFsync:       fsync,
		SnapshotEvery:      *snapshotEvery,
	}
	if len(tenants) > 0 {
		reg, err := tenant.NewRegistry(tenants...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unizk-server:", err)
			os.Exit(1)
		}
		cfg.Tenants = reg
	}
	if err := run(*addr, cfg, *workers, *drain, *portfile); err != nil {
		fmt.Fprintln(os.Stderr, "unizk-server:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg server.Config, workers int, drain time.Duration, portfile string) error {
	if workers > 0 {
		parallel.SetWorkers(workers)
	}

	s, err := server.NewDurable(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if portfile != "" {
		if err := os.WriteFile(portfile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	fmt.Printf("unizk-server listening on %s (queue=%d inflight=%d workers=%d)\n",
		bound, cfg.QueueCap, cfg.MaxInFlight, parallel.Workers())

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	//unizklint:allow goroutinelife(exits when hs.Serve returns; Shutdown below unblocks it and main waits on serveErr)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		fmt.Printf("unizk-server: %v, draining (up to %v)\n", sig, drain)
	case err := <-serveErr:
		return err
	}

	// Drain the job scheduler first so queued jobs are rejected and
	// in-flight proofs finish, then close the HTTP listener.
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	forced := s.Shutdown(dctx)
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-serveErr // always http.ErrServerClosed after Shutdown
	if forced != nil {
		fmt.Println("unizk-server: drain deadline hit, in-flight jobs canceled")
	} else {
		fmt.Println("unizk-server: drained cleanly")
	}
	return nil
}
