// Command unizk-bench regenerates the paper's tables and figures (the
// experiment workflow of the paper's artifact appendix). It measures the
// CPU baseline by running the Go provers, simulates UniZK on the recorded
// kernel graphs, and prints each table side by side with the paper's
// published values.
//
// Usage:
//
//	unizk-bench [-rows 11] [-stark 12] [-only "Table 3"] [-out EXPERIMENTS.md]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"unizk/internal/bench"
)

func main() {
	rows := flag.Int("rows", 11, "log2 of Plonk workload rows (paper: 20+)")
	starkN := flag.Int("stark", 12, "log2 of Starky trace rows")
	only := flag.String("only", "", "generate only the named report (e.g. 'Table 3')")
	out := flag.String("out", "", "also append the reports to this file")
	flag.Parse()

	opts := bench.DefaultOptions()
	opts.LogRows = *rows
	opts.StarkLogN = *starkN
	runner := bench.NewRunner(opts)

	start := time.Now()
	reports, err := runner.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "unizk-bench:", err)
		os.Exit(1)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "UniZK experiment reproduction — 2^%d Plonk rows, 2^%d Starky rows (%.1fs total)\n\n",
		*rows, *starkN, time.Since(start).Seconds())
	for _, rep := range reports {
		if *only != "" && rep.ID != *only {
			continue
		}
		fmt.Fprintf(&b, "== %s: %s ==\n\n%s\n", rep.ID, rep.Title, rep.Text)
	}
	fmt.Print(b.String())

	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unizk-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := f.WriteString(b.String()); err != nil {
			fmt.Fprintln(os.Stderr, "unizk-bench:", err)
			os.Exit(1)
		}
	}
}
