// Command unizk-bench regenerates the paper's tables and figures (the
// experiment workflow of the paper's artifact appendix). It measures the
// CPU baseline by running the Go provers, simulates UniZK on the recorded
// kernel graphs, and prints each table side by side with the paper's
// published values.
//
// Usage:
//
//	unizk-bench [-rows 11] [-stark 12] [-only "Table 3"] [-out EXPERIMENTS.md]
//	unizk-bench -kernels [-note "what changed"] [-trajectory BENCH_kernels.json]
//
// The -kernels mode runs the tracked per-kernel benchmark registry
// (internal/bench/trajectory), prints a benchstat-style delta against
// the last committed entry for this host class, and appends the new
// sweep to the trajectory file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"unizk/internal/bench"
	"unizk/internal/bench/trajectory"
)

func main() {
	rows := flag.Int("rows", 11, "log2 of Plonk workload rows (paper: 20+)")
	starkN := flag.Int("stark", 12, "log2 of Starky trace rows")
	only := flag.String("only", "", "generate only the named report (e.g. 'Table 3')")
	out := flag.String("out", "", "also append the reports to this file")
	kernels := flag.Bool("kernels", false, "record a per-kernel trajectory entry instead of the paper tables")
	note := flag.String("note", "", "free-form label stored with the -kernels entry")
	trajPath := flag.String("trajectory", "BENCH_kernels.json", "trajectory file for -kernels (repo-root relative)")
	flag.Parse()

	if *kernels {
		if err := recordKernels(*trajPath, *note); err != nil {
			fmt.Fprintln(os.Stderr, "unizk-bench:", err)
			os.Exit(1)
		}
		return
	}

	opts := bench.DefaultOptions()
	opts.LogRows = *rows
	opts.StarkLogN = *starkN
	runner := bench.NewRunner(opts)

	start := time.Now()
	reports, err := runner.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "unizk-bench:", err)
		os.Exit(1)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "UniZK experiment reproduction — 2^%d Plonk rows, 2^%d Starky rows (%.1fs total)\n\n",
		*rows, *starkN, time.Since(start).Seconds())
	for _, rep := range reports {
		if *only != "" && rep.ID != *only {
			continue
		}
		fmt.Fprintf(&b, "== %s: %s ==\n\n%s\n", rep.ID, rep.Title, rep.Text)
	}
	fmt.Print(b.String())

	if *out != "" {
		f, err := os.OpenFile(*out, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "unizk-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if _, err := f.WriteString(b.String()); err != nil {
			fmt.Fprintln(os.Stderr, "unizk-bench:", err)
			os.Exit(1)
		}
	}
}

// recordKernels measures every tracked kernel, prints the delta against
// the last committed entry for this host class, and appends the sweep
// to the trajectory file. Regressions are printed (marked REGRESSION)
// but do not fail the command — the append-only history is the point;
// enforcement lives in the env-gated trajectory test.
func recordKernels(path, note string) error {
	f, err := trajectory.Load(path)
	if err != nil {
		return err
	}
	class := trajectory.CurrentHostClass()
	fmt.Printf("measuring %d kernels on %s (this takes a minute)...\n",
		len(trajectory.Kernels()), class)

	start := time.Now()
	results := trajectory.MeasureAll()
	fmt.Printf("measured in %.1fs\n\n", time.Since(start).Seconds())

	if base := f.LastForHost(class); base != nil {
		deltas := trajectory.Compare(base.Results, results)
		fmt.Printf("vs %s (%s):\n%s\n", base.Timestamp, base.Note, trajectory.FormatDeltas(deltas))
	} else {
		fmt.Printf("no prior entry for host class %s — recording baseline\n\n", class)
		for _, r := range results {
			fmt.Printf("%-28s %14.0f ns/op %10.0f allocs/op\n", r.Kernel, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Println()
	}

	entry := trajectory.NewEntry(time.Now().UTC().Format(time.RFC3339), note, results)
	f.Entries = append(f.Entries, entry)
	if err := f.Save(path); err != nil {
		return err
	}
	fmt.Printf("appended entry %d to %s\n", len(f.Entries), path)
	return nil
}
